"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestPlan:
    def test_conflict_free_plan(self, capsys):
        exit_code = main(
            ["plan", "--stride", "12", "--base", "16", "--length", "128"]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "conflict_free" in output
        assert "137 cycles" in output

    def test_unmatched_plan(self, capsys):
        exit_code = main(["plan", "--stride", "96", "--y", "9"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "M=64" in output

    def test_timeline_flag(self, capsys):
        exit_code = main(["plan", "--stride", "3", "--timeline"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "mod   0" in output

    def test_invalid_vector_is_clean_error(self, capsys):
        exit_code = main(["plan", "--stride", "0"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "error:" in captured.err

    def test_ordered_mode(self, capsys):
        exit_code = main(["plan", "--stride", "12", "--mode", "ordered"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "canonical" in output


class TestWindow:
    def test_matched(self, capsys):
        exit_code = main(["window", "--lam", "7", "--t", "3"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "[0..4]" in output
        assert "31/32" in output

    def test_unmatched(self, capsys):
        exit_code = main(["window", "--lam", "7", "--t", "3", "--unmatched"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "[0..9]" in output
        assert "1023/1024" in output


class TestExperiments:
    def test_single_experiment(self, capsys):
        exit_code = main(["experiments", "--ids", "E01"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "Figure 3" in output
        assert "[ok ]" in output

    def test_unknown_id(self, capsys):
        exit_code = main(["experiments", "--ids", "E99"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "unknown experiment" in captured.err


class TestSurvey:
    def test_table_shape(self, capsys):
        exit_code = main(["survey", "--max-stride", "10"])
        output = capsys.readouterr().out
        assert exit_code == 0
        # Header + separator + 10 stride rows.
        lines = [l for l in output.splitlines() if l.strip()]
        assert len(lines) >= 12
        assert "conflict-free" in output


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_plan_requires_stride(self):
        with pytest.raises(SystemExit):
            main(["plan"])


class TestRun:
    def _write_program(self, tmp_path, text):
        path = tmp_path / "prog.vasm"
        path.write_text(text)
        return str(path)

    def test_run_program_with_directives(self, tmp_path, capsys):
        path = self._write_program(
            tmp_path,
            "\n".join(
                [
                    ".fill base=0, stride=3, count=128, value=2.0",
                    "vload  v1, base=0, stride=3",
                    "vscale v2, v1, scalar=10.0",
                    "vstore v2, base=20000, stride=1",
                ]
            ),
        )
        exit_code = main(["run", path, "--dump", "20000:1:3"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "conflict_free" in output
        assert "[20.0, 20.0, 20.0]" in output

    def test_init_directive(self, tmp_path, capsys):
        path = self._write_program(
            tmp_path,
            "\n".join(
                [
                    ".init base=0, stride=1, values=1.0;2.0;3.0;4.0",
                    "vload v1, base=0, stride=1, length=4",
                    "vsum v2, v1, length=4",
                    "vstore v2, base=100, stride=1, length=1",
                ]
            ),
        )
        exit_code = main(["run", path, "--dump", "100:1:1"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "[10.0]" in output

    def test_chaining_flag(self, tmp_path, capsys):
        path = self._write_program(
            tmp_path,
            "\n".join(
                [
                    ".fill base=0, stride=3, count=128, value=1.0",
                    "vload  v1, base=0, stride=3",
                    "vscale v2, v1, scalar=2.0",
                ]
            ),
        )
        exit_code = main(["run", path, "--chaining"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "chained" in output

    def test_bad_directive_is_clean_error(self, tmp_path, capsys):
        path = self._write_program(tmp_path, ".bogus base=0")
        exit_code = main(["run", path])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "error:" in captured.err

    def test_uninitialised_read_is_clean_error(self, tmp_path, capsys):
        path = self._write_program(tmp_path, "vload v1, base=0, stride=1")
        exit_code = main(["run", path])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "error:" in captured.err
