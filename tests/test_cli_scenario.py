"""CLI tests for `repro scenario run|list` and `lab run --param`."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.scenarios import ComponentSpec, MemorySpec, ScenarioGrid, ScenarioSpec


@pytest.fixture
def spec_file(tmp_path):
    spec = ScenarioSpec(
        mapping=ComponentSpec.of("matched-xor", t=3, s=4),
        memory=MemorySpec(t=3),
        workload=ComponentSpec.of("strided", base=16, stride=12, length=128),
        name="cli-demo",
    )
    path = tmp_path / "spec.json"
    path.write_text(spec.to_json())
    return spec, path


class TestScenarioRun:
    def test_run_prints_normalised_metrics(self, spec_file, capsys):
        _spec, path = spec_file
        assert main(["scenario", "run", str(path)]) == 0
        output = capsys.readouterr().out
        assert "cli-demo" in output
        assert "latency" in output and "137" in output
        assert "conflict_free" in output

    def test_json_output_round_trips(self, spec_file, capsys):
        spec, path = spec_file
        assert main(["scenario", "run", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["spec"] == spec.to_dict()
        assert payload[0]["result"]["latency"] == 137

    def test_grid_file_expands_to_every_point(self, tmp_path, capsys):
        spec, _path = (
            ScenarioSpec(
                mapping=ComponentSpec.of("matched-xor", t=3, s=4),
                memory=MemorySpec(t=3),
                workload=ComponentSpec.of("strided", stride=12, length=128),
                name="grid",
            ),
            None,
        )
        grid = ScenarioGrid.of(spec, memory__q=(1, 2, 4))
        path = tmp_path / "grid.json"
        path.write_text(grid.to_json())
        assert main(["scenario", "run", str(path), "--json"]) == 0
        assert len(json.loads(capsys.readouterr().out)) == 3

    def test_missing_file_exits_two(self, capsys):
        assert main(["scenario", "run", "/nonexistent/spec.json"]) == 2
        assert "no such scenario file" in capsys.readouterr().err

    def test_bad_spec_is_clean_error(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text('{"mapping": {"kind": "warp"}, "memory": {"t": 3}}')
        assert main(["scenario", "run", str(path)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_lab_mode_caches(self, spec_file, tmp_path, capsys):
        _spec, path = spec_file
        root = str(tmp_path / "lab")
        assert main(["scenario", "run", str(path), "--lab", "--root", root]) == 0
        assert "1 scenarios" in capsys.readouterr().out
        assert main(["scenario", "run", str(path), "--lab", "--root", root]) == 0
        assert "1 cache hits" in capsys.readouterr().out

    def test_committed_example_files_run(self, capsys):
        from pathlib import Path

        examples = sorted(
            str(path) for path in Path("examples").glob("scenario_*.json")
        )
        assert len(examples) >= 3
        assert main(["scenario", "run", *examples]) == 0


class TestScenarioList:
    def test_lists_every_category_and_kind(self, capsys):
        assert main(["scenario", "list"]) == 0
        output = capsys.readouterr().out
        for heading in ("mapping kinds:", "workload kinds:", "drive kinds:"):
            assert heading in output
        for kind in ("matched-xor", "section-xor", "bit-reversal", "decoupled"):
            assert kind in output
        assert "example params" in output


class TestLabRunParam:
    def test_param_override_runs_the_design_point(self, tmp_path, capsys):
        root = str(tmp_path / "lab")
        code = main(
            [
                "lab", "run",
                "--ids", "E03",
                "--param", "E03:lambda_exponent=6",
                "--root", root,
                "--jobs", "1",
            ]
        )
        assert code == 0
        assert "E03[lambda_exponent=6]" in capsys.readouterr().out

    def test_malformed_param_is_clean_error(self, tmp_path, capsys):
        code = main(
            ["lab", "run", "--ids", "E01", "--param", "garbage",
             "--root", str(tmp_path / "lab")]
        )
        assert code == 2
        assert "expected JOB:KEY=VALUE" in capsys.readouterr().err

    def test_unknown_param_name_is_clean_error(self, tmp_path, capsys):
        code = main(
            ["lab", "run", "--ids", "E01", "--param", "E01:warp=9",
             "--root", str(tmp_path / "lab")]
        )
        assert code == 2
        assert "does not accept" in capsys.readouterr().err

    def test_param_for_unselected_job_is_clean_error(self, tmp_path, capsys):
        # A typo'd job id must not silently run the default design point.
        code = main(
            ["lab", "run", "--ids", "E01", "--param", "E3:lambda_exponent=8",
             "--root", str(tmp_path / "lab")]
        )
        assert code == 2
        assert "not in the selected jobs" in capsys.readouterr().err
