"""CLI tests for `repro scenario run|list` and `lab run --param`."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.scenarios import ComponentSpec, MemorySpec, ScenarioGrid, ScenarioSpec


@pytest.fixture
def spec_file(tmp_path):
    spec = ScenarioSpec(
        mapping=ComponentSpec.of("matched-xor", t=3, s=4),
        memory=MemorySpec(t=3),
        workload=ComponentSpec.of("strided", base=16, stride=12, length=128),
        name="cli-demo",
    )
    path = tmp_path / "spec.json"
    path.write_text(spec.to_json())
    return spec, path


class TestScenarioRun:
    def test_run_prints_normalised_metrics(self, spec_file, capsys):
        _spec, path = spec_file
        assert main(["scenario", "run", str(path)]) == 0
        output = capsys.readouterr().out
        assert "cli-demo" in output
        assert "latency" in output and "137" in output
        assert "conflict_free" in output

    def test_json_output_round_trips(self, spec_file, capsys):
        spec, path = spec_file
        assert main(["scenario", "run", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["spec"] == spec.to_dict()
        assert payload[0]["result"]["latency"] == 137

    def test_grid_file_expands_to_every_point(self, tmp_path, capsys):
        spec, _path = (
            ScenarioSpec(
                mapping=ComponentSpec.of("matched-xor", t=3, s=4),
                memory=MemorySpec(t=3),
                workload=ComponentSpec.of("strided", stride=12, length=128),
                name="grid",
            ),
            None,
        )
        grid = ScenarioGrid.of(spec, memory__q=(1, 2, 4))
        path = tmp_path / "grid.json"
        path.write_text(grid.to_json())
        assert main(["scenario", "run", str(path), "--json"]) == 0
        assert len(json.loads(capsys.readouterr().out)) == 3

    def test_missing_file_exits_two(self, capsys):
        assert main(["scenario", "run", "/nonexistent/spec.json"]) == 2
        assert "no such scenario file" in capsys.readouterr().err

    def test_bad_spec_is_clean_error(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text('{"mapping": {"kind": "warp"}, "memory": {"t": 3}}')
        assert main(["scenario", "run", str(path)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_lab_mode_caches(self, spec_file, tmp_path, capsys):
        _spec, path = spec_file
        root = str(tmp_path / "lab")
        assert main(["scenario", "run", str(path), "--lab", "--root", root]) == 0
        assert "1 scenarios" in capsys.readouterr().out
        assert main(["scenario", "run", str(path), "--lab", "--root", root]) == 0
        assert "1 cache hits" in capsys.readouterr().out

    def test_committed_example_files_run(self, capsys):
        from pathlib import Path

        examples = sorted(
            str(path)
            for path in Path("examples").glob("scenario_*.json")
            # The bad-stride spec is deliberately unrunnable — it exists
            # for `repro check` to reject (see tests/check).
            if path.name != "scenario_bad_stride.json"
        )
        assert len(examples) >= 3
        assert main(["scenario", "run", *examples]) == 0


class TestScenarioList:
    def test_lists_every_category_and_kind(self, capsys):
        assert main(["scenario", "list"]) == 0
        output = capsys.readouterr().out
        for heading in ("mapping kinds:", "workload kinds:", "drive kinds:"):
            assert heading in output
        for kind in ("matched-xor", "section-xor", "bit-reversal", "decoupled"):
            assert kind in output
        assert "example params" in output


class TestLabRunParam:
    def test_param_override_runs_the_design_point(self, tmp_path, capsys):
        root = str(tmp_path / "lab")
        code = main(
            [
                "lab", "run",
                "--ids", "E03",
                "--param", "E03:lambda_exponent=6",
                "--root", root,
                "--jobs", "1",
            ]
        )
        assert code == 0
        assert "E03[lambda_exponent=6]" in capsys.readouterr().out

    def test_malformed_param_is_clean_error(self, tmp_path, capsys):
        code = main(
            ["lab", "run", "--ids", "E01", "--param", "garbage",
             "--root", str(tmp_path / "lab")]
        )
        assert code == 2
        assert "expected JOB:KEY=VALUE" in capsys.readouterr().err

    def test_unknown_param_name_is_clean_error(self, tmp_path, capsys):
        code = main(
            ["lab", "run", "--ids", "E01", "--param", "E01:warp=9",
             "--root", str(tmp_path / "lab")]
        )
        assert code == 2
        assert "does not accept" in capsys.readouterr().err

    def test_param_for_unselected_job_is_clean_error(self, tmp_path, capsys):
        # A typo'd job id must not silently run the default design point.
        code = main(
            ["lab", "run", "--ids", "E01", "--param", "E3:lambda_exponent=8",
             "--root", str(tmp_path / "lab")]
        )
        assert code == 2
        assert "not in the selected jobs" in capsys.readouterr().err


@pytest.fixture
def program_spec_file(tmp_path):
    spec = ScenarioSpec(
        mapping=ComponentSpec.of("matched-xor", t=3, s=4),
        memory=MemorySpec(t=3, q=2),
        program=ComponentSpec.of("daxpy", n=96, x_stride=4, y_stride=4),
        drive=ComponentSpec.of("decoupled", chaining=True),
        name="cli-daxpy",
    )
    path = tmp_path / "program.json"
    path.write_text(spec.to_json())
    return spec, path


class TestScenarioRunProgram:
    def test_program_spec_prints_timeline_and_metrics(
        self, program_spec_file, capsys
    ):
        _spec, path = program_spec_file
        assert main(["scenario", "run", str(path)]) == 0
        output = capsys.readouterr().out
        assert "extra:numerically_correct" in output
        assert "extra:chaining_speedup" in output
        assert "start_cycle" in output  # the per-instruction timeline
        assert "chained" in output

    def test_program_spec_json_round_trips(self, program_spec_file, capsys):
        spec, path = program_spec_file
        assert main(["scenario", "run", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["spec"] == spec.to_dict()
        assert payload[0]["result"]["extras"]["numerically_correct"] is True
        assert len(payload[0]["result"]["timeline"]) == 10

    def test_program_spec_runs_through_lab_cache(
        self, program_spec_file, tmp_path, capsys
    ):
        _spec, path = program_spec_file
        root = str(tmp_path / "lab")
        assert main(["scenario", "run", str(path), "--lab", "--root", root]) == 0
        capsys.readouterr()
        assert main(["scenario", "run", str(path), "--lab", "--root", root]) == 0
        assert "1 cache hits" in capsys.readouterr().out


class TestScenarioDiff:
    def write(self, tmp_path, name, spec):
        path = tmp_path / name
        path.write_text(spec.to_json())
        return str(path)

    def test_identical_points_exit_zero(self, spec_file, capsys):
        _spec, path = spec_file
        assert main(["scenario", "diff", str(path), str(path)]) == 0
        assert "metric-identical" in capsys.readouterr().out

    def test_regression_exits_one(self, tmp_path, capsys):
        base = ScenarioSpec(
            mapping=ComponentSpec.of("matched-xor", t=3, s=4),
            memory=MemorySpec(t=3),
            workload=ComponentSpec.of("strided", base=16, stride=12, length=128),
            name="auto",
        )
        ordered = base.replace("drive.params.mode", "ordered").replace(
            "name", "ordered"
        )
        file_a = self.write(tmp_path, "a.json", base)
        file_b = self.write(tmp_path, "b.json", ordered)
        assert main(["scenario", "diff", file_a, file_b]) == 1
        output = capsys.readouterr().out
        assert "[REGRESSION] latency" in output
        # the reverse direction is an improvement, not a regression
        assert main(["scenario", "diff", file_b, file_a]) == 0

    def test_missing_file_exits_two(self, spec_file, capsys):
        _spec, path = spec_file
        assert main(["scenario", "diff", str(path), "/nonexistent.json"]) == 2
        assert "no such scenario file" in capsys.readouterr().err

    def test_grid_file_rejected(self, tmp_path, spec_file, capsys):
        spec, path = spec_file
        grid = ScenarioGrid.of(spec, memory__q=(1, 2))
        grid_path = tmp_path / "grid.json"
        grid_path.write_text(grid.to_json())
        assert main(["scenario", "diff", str(path), str(grid_path)]) == 2
        assert "exactly one" in capsys.readouterr().err


class TestLabSweep:
    @pytest.fixture
    def grid_file(self, tmp_path):
        spec = ScenarioSpec(
            mapping=ComponentSpec.of("matched-xor", t=3, s=4),
            memory=MemorySpec(t=3, q=2),
            program=ComponentSpec.of("saxpy-chain", n=64),
            drive=ComponentSpec.of("decoupled", chaining=True),
            name="sweep",
        )
        grid = ScenarioGrid.of(
            spec,
            program__params__n=(64, 96),
            drive__params__chaining=(False, True),
        )
        path = tmp_path / "grid.json"
        path.write_text(grid.to_json())
        return path

    def test_sweep_renders_axes_as_columns(self, grid_file, tmp_path, capsys):
        root = str(tmp_path / "lab")
        assert main(["lab", "sweep", str(grid_file), "--root", root,
                     "--jobs", "1"]) == 0
        output = capsys.readouterr().out
        header = next(
            line for line in output.splitlines() if "latency" in line
        )
        assert "chaining" in header and "n" in header
        assert "numerically_correct" in header
        assert "4 design points" in output

    def test_sweep_is_cached_on_rerun(self, grid_file, tmp_path, capsys):
        root = str(tmp_path / "lab")
        assert main(["lab", "sweep", str(grid_file), "--root", root,
                     "--jobs", "1"]) == 0
        capsys.readouterr()
        assert main(["lab", "sweep", str(grid_file), "--root", root,
                     "--jobs", "1"]) == 0
        assert "4 cache hits" in capsys.readouterr().out

    def test_sweep_markdown_output_file(self, grid_file, tmp_path, capsys):
        root = str(tmp_path / "lab")
        out = tmp_path / "table.md"
        assert main(["lab", "sweep", str(grid_file), "--root", root,
                     "--jobs", "1", "--markdown", "--output", str(out)]) == 0
        assert out.read_text().startswith("### grid of 4 scenarios")
        assert "| chaining | n |" in out.read_text()

    def test_plain_spec_file_rejected(self, spec_file, tmp_path, capsys):
        _spec, path = spec_file
        code = main(
            ["lab", "sweep", str(path), "--root", str(tmp_path / "lab")]
        )
        assert code == 2
        assert "grid file" in capsys.readouterr().err

    def test_missing_file_exits_two(self, tmp_path, capsys):
        code = main(
            ["lab", "sweep", "/nonexistent/grid.json",
             "--root", str(tmp_path / "lab")]
        )
        assert code == 2
        assert "no such grid file" in capsys.readouterr().err
