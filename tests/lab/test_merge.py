"""Tests for ArtifactStore.merge and the distributed-workflow paths.

Merging is what folds a detached worker's lab root back into the
primary store after a spool run against a synced copy.  Content
addressing makes it conflict-free; these tests pin the properties that
make it safe to run blindly: idempotent, order-independent, cache-
preserving, and corruption-tolerant.
"""

from __future__ import annotations

import json

import pytest

from repro.lab.diffing import diff_runs
from repro.lab.executor import run_jobs
from repro.lab.jobs import build_registry
from repro.lab.manifest import write_run_artifacts
from repro.lab.store import ArtifactStore, StoreMergeError


def run_subset(store, job_ids):
    registry = build_registry()
    return run_jobs(
        [registry[job_id] for job_id in job_ids], store=store, backend="serial"
    )


def artifact_addresses(store):
    return sorted(
        path.parent.name for path in store.artifacts_dir.glob("*/result.json")
    )


class TestMerge:
    def test_detached_store_folds_back(self, tmp_path):
        primary = ArtifactStore(tmp_path / "primary")
        detached = ArtifactStore(tmp_path / "detached")
        run_subset(primary, ["E01", "S-t"])
        report = run_subset(detached, ["E02", "S-lambda"])
        write_run_artifacts(detached, report)
        counts = primary.merge(detached)
        assert counts["artifacts_imported"] == 2
        assert counts["artifacts_skipped"] == 0
        assert counts["runs_imported"] == 1
        assert len(artifact_addresses(primary)) == 4
        # The SQLite index was re-derived over everything.
        assert {row["job_id"] for row in primary.results()} == {
            "E01",
            "E02",
            "S-lambda",
            "S-t",
        }

    def test_merge_is_idempotent(self, tmp_path):
        primary = ArtifactStore(tmp_path / "primary")
        detached = ArtifactStore(tmp_path / "detached")
        run_subset(detached, ["E01", "E02"])
        first = primary.merge(detached)
        before = artifact_addresses(primary)
        second = primary.merge(detached)
        assert first["artifacts_imported"] == 2
        assert second["artifacts_imported"] == 0
        assert second["artifacts_skipped"] == 2
        assert artifact_addresses(primary) == before

    def test_merge_is_order_independent(self, tmp_path):
        stores = {}
        for name in ("a", "b"):
            stores[name] = ArtifactStore(tmp_path / name)
        run_subset(stores["a"], ["E01"])
        run_subset(stores["b"], ["E02", "S-t"])
        ab = ArtifactStore(tmp_path / "ab")
        ba = ArtifactStore(tmp_path / "ba")
        ab.merge(stores["a"])
        ab.merge(stores["b"])
        ba.merge(stores["b"])
        ba.merge(stores["a"])
        assert artifact_addresses(ab) == artifact_addresses(ba)
        assert [row["job_id"] for row in ab.results()] == [
            row["job_id"] for row in ba.results()
        ]

    def test_merged_artifacts_are_cache_hits(self, tmp_path):
        primary = ArtifactStore(tmp_path / "primary")
        detached = ArtifactStore(tmp_path / "detached")
        run_subset(detached, ["E01", "E02"])
        primary.merge(detached)
        report = run_subset(primary, ["E01", "E02"])
        assert report.cache_hits == 2
        assert report.executed == 0

    def test_merged_artifact_bytes_are_identical(self, tmp_path):
        primary = ArtifactStore(tmp_path / "primary")
        detached = ArtifactStore(tmp_path / "detached")
        run_subset(detached, ["E01"])
        primary.merge(detached)
        for address in artifact_addresses(detached):
            assert (
                primary.artifact_path(address).read_bytes()
                == detached.artifact_path(address).read_bytes()
            )

    def test_merge_into_itself_raises(self, tmp_path):
        store = ArtifactStore(tmp_path / "lab")
        run_subset(store, ["E01"])
        with pytest.raises(StoreMergeError, match="into itself"):
            store.merge(ArtifactStore(tmp_path / "lab"))

    def test_merge_missing_root_raises(self, tmp_path):
        store = ArtifactStore(tmp_path / "lab")
        with pytest.raises(StoreMergeError, match="no lab root"):
            store.merge(ArtifactStore(tmp_path / "nowhere"))

    def test_corrupt_source_artifact_is_skipped_and_counted(self, tmp_path):
        primary = ArtifactStore(tmp_path / "primary")
        detached = ArtifactStore(tmp_path / "detached")
        run_subset(detached, ["E01", "E02"])
        victim = artifact_addresses(detached)[0]
        detached.artifact_path(victim).write_text("GARBAGE{")
        counts = primary.merge(detached)
        assert counts["artifacts_imported"] == 1
        assert counts["corrupt_skipped"] == 1

    def test_corrupt_local_artifact_is_healed_by_merge(self, tmp_path):
        primary = ArtifactStore(tmp_path / "primary")
        detached = ArtifactStore(tmp_path / "detached")
        run_subset(primary, ["E01"])
        run_subset(detached, ["E01"])
        victim = artifact_addresses(primary)[0]
        primary.artifact_path(victim).write_text("GARBAGE{")
        counts = primary.merge(detached)
        assert counts["artifacts_imported"] == 1
        assert primary.load(victim) is not None

    def test_existing_runs_are_not_overwritten(self, tmp_path):
        primary = ArtifactStore(tmp_path / "primary")
        detached = ArtifactStore(tmp_path / "detached")
        report = run_subset(primary, ["E01"])
        write_run_artifacts(primary, report)
        run_dir = primary.runs_dir / report.run_id
        marker = (run_dir / "manifest.json").read_bytes()
        (detached.runs_dir / report.run_id).mkdir(parents=True)
        (detached.runs_dir / report.run_id / "manifest.json").write_text("{}")
        (detached.artifacts_dir).mkdir(parents=True, exist_ok=True)
        counts = primary.merge(detached)
        assert counts["runs_imported"] == 0
        assert (run_dir / "manifest.json").read_bytes() == marker


class TestDiffAgainstMergedStore:
    def test_runs_from_two_stores_diff_after_merge(self, tmp_path):
        """`repro lab diff` across runs that never shared a store."""
        store_a = ArtifactStore(tmp_path / "a")
        store_b = ArtifactStore(tmp_path / "b")
        report_a = run_subset(store_a, ["E01", "E02"])
        write_run_artifacts(store_a, report_a)
        report_b = run_subset(store_b, ["E01", "E02"])
        write_run_artifacts(store_b, report_b)
        merged = ArtifactStore(tmp_path / "merged")
        merged.merge(store_a)
        merged.merge(store_b)
        diff = diff_runs(merged, report_a.run_id, report_b.run_id)
        assert diff.compared == 2
        assert diff.identical == 2
        assert not diff.has_regressions

    def test_regression_survives_the_merge(self, tmp_path, monkeypatch):
        """A new-version run that regressed diffs red after merging.

        The version bump matters: content addressing means two runs of
        the *same* config share one artifact, so a regression can only
        coexist with its baseline under a different package version (or
        source fingerprint) — exactly the real-world "candidate build
        on another host" workflow.
        """
        import repro
        from repro.report.experiments import ALL_EXPERIMENTS, ExperimentResult

        store_a = ArtifactStore(tmp_path / "a")
        store_b = ArtifactStore(tmp_path / "b")
        report_a = run_subset(store_a, ["E01"])
        write_run_artifacts(store_a, report_a)

        def failing():
            result = ExperimentResult("E01", "forced", ["v"], [[1]])
            result.check("claim", 1, 2)
            return result

        failing.__doc__ = "Fails."
        monkeypatch.setitem(ALL_EXPERIMENTS, "E01", failing)
        monkeypatch.setattr(repro, "__version__", "999.0.0-candidate")
        report_b = run_subset(store_b, ["E01"])
        write_run_artifacts(store_b, report_b)
        merged = ArtifactStore(tmp_path / "merged")
        merged.merge(store_a)
        merged.merge(store_b)
        diff = diff_runs(merged, report_a.run_id, report_b.run_id)
        assert diff.has_regressions


class TestCorruptedArtifactsReExecute:
    def test_corrupted_artifact_is_a_cache_miss_and_re_executes(self, tmp_path):
        store = ArtifactStore(tmp_path / "lab")
        first = run_subset(store, ["E01"])
        address = first.outcomes[0].record["config_hash"]
        store.artifact_path(address).write_text('{"truncated": ')
        second = run_subset(store, ["E01"])
        assert second.cache_hits == 0
        assert second.executed == 1
        # The re-execution healed the artifact in place.
        healed = json.loads(store.artifact_path(address).read_text())
        assert healed["config_hash"] == address
        assert healed["all_passed"] is True
