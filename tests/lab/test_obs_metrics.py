"""Lab observability: batch metrics, manifest stamps, stale-row pruning.

``run_jobs`` now summarises each batch (cache-hit rate, queue latency,
backend detail) on the report; ``write_run_artifacts`` persists that
summary plus the git commit into ``manifest.json``;
``recent_run_metrics`` reads them back; ``prune_stale_index`` drops
index rows whose artifact files were deleted out from under the index.
"""

from __future__ import annotations

import json

from repro.lab import (
    ArtifactStore,
    recent_run_metrics,
    run_jobs,
    scenario_job,
    write_run_artifacts,
)
from repro.obs.history import current_git_commit
from repro.scenarios import ScenarioSpec


def spec(name: str = "metrics-demo", stride: int = 4) -> ScenarioSpec:
    return ScenarioSpec.from_dict(
        {
            "name": name,
            "mapping": {"kind": "matched-xor", "params": {"t": 2, "s": 3}},
            "memory": {"t": 2},
            "workload": {
                "kind": "strided",
                "params": {"base": 0, "stride": stride, "length": 32},
            },
        }
    )


class TestBatchMetrics:
    def test_cold_batch_reports_executed_jobs(self, tmp_path):
        store = ArtifactStore(tmp_path)
        report = run_jobs(
            [scenario_job(spec()), scenario_job(spec(stride=8))],
            store=store,
            backend="serial",
        )
        metrics = report.metrics
        assert metrics["backend"] == "serial"
        assert metrics["jobs"] == 2
        assert metrics["cache_hits"] == 0
        assert metrics["executed"] == 2
        assert metrics["cache_hit_rate"] == 0.0
        assert metrics["wall_seconds"] >= 0.0
        assert metrics["queue_latency_mean_seconds"] >= 0.0
        assert (
            metrics["queue_latency_max_seconds"]
            >= metrics["queue_latency_mean_seconds"]
        )

    def test_warm_batch_is_all_cache_hits(self, tmp_path):
        store = ArtifactStore(tmp_path)
        jobs = [scenario_job(spec())]
        run_jobs(jobs, store=store, backend="serial")
        report = run_jobs(jobs, store=store, backend="serial")
        metrics = report.metrics
        assert metrics["cache_hits"] == 1
        assert metrics["executed"] == 0
        assert metrics["cache_hit_rate"] == 1.0
        # Cached jobs never queue, so the latency stats stay zero.
        assert metrics["queue_latency_mean_seconds"] == 0.0

    def test_pool_backend_reports_worker_count(self, tmp_path):
        store = ArtifactStore(tmp_path)
        report = run_jobs(
            [scenario_job(spec())],
            store=store,
            backend="pool",
            workers=2,
        )
        # A one-job batch short-circuits to inline execution but the
        # backend identity and its worker detail still surface.
        assert report.metrics["jobs"] == 1
        assert "pool_workers" in report.metrics


class TestManifestStamp:
    def test_manifest_carries_metrics_commit_and_backend(self, tmp_path):
        store = ArtifactStore(tmp_path)
        report = run_jobs(
            [scenario_job(spec())], store=store, backend="serial"
        )
        run_dir = write_run_artifacts(store, report)
        manifest = json.loads((run_dir / "manifest.json").read_text())
        assert manifest["git_commit"] == current_git_commit()
        assert manifest["backend"] == "serial"
        assert manifest["metrics"] == report.metrics

    def test_recent_run_metrics_reads_back_newest_first(self, tmp_path):
        store = ArtifactStore(tmp_path)
        ids = []
        for _ in range(2):
            report = run_jobs(
                [scenario_job(spec())], store=store, backend="serial"
            )
            write_run_artifacts(store, report)
            ids.append(report.run_id)
        # Back-date the first run so the newest-first sort is decided by
        # created_at, not by the same-second run-id tie-break.
        first_manifest = store.runs_dir / ids[0] / "manifest.json"
        manifest = json.loads(first_manifest.read_text())
        manifest["created_at"] = "2020-01-01T00:00:00Z"
        first_manifest.write_text(json.dumps(manifest))
        entries = recent_run_metrics(store)
        assert [entry["run_id"] for entry in entries] == ids[::-1]
        newest = entries[0]
        assert newest["backend"] == "serial"
        assert newest["job_count"] == 1
        assert newest["failures"] == 0
        assert newest["metrics"]["cache_hit_rate"] == 1.0

    def test_pre_metrics_manifests_still_listed(self, tmp_path):
        store = ArtifactStore(tmp_path)
        report = run_jobs(
            [scenario_job(spec())], store=store, backend="serial"
        )
        run_dir = write_run_artifacts(store, report)
        manifest = json.loads((run_dir / "manifest.json").read_text())
        for key in ("metrics", "git_commit", "backend"):
            manifest.pop(key, None)
        (run_dir / "manifest.json").write_text(json.dumps(manifest))
        (entry,) = recent_run_metrics(store)
        assert entry["run_id"] == report.run_id
        assert entry["metrics"] == {}
        assert entry["backend"] == ""

    def test_limit_caps_the_listing(self, tmp_path):
        store = ArtifactStore(tmp_path)
        for _ in range(3):
            report = run_jobs(
                [scenario_job(spec())], store=store, backend="serial"
            )
            write_run_artifacts(store, report)
        assert len(recent_run_metrics(store, limit=2)) == 2


class TestPruneStaleIndex:
    def test_prunes_rows_for_deleted_artifacts(self, tmp_path):
        store = ArtifactStore(tmp_path)
        report = run_jobs(
            [scenario_job(spec()), scenario_job(spec(stride=8))],
            store=store,
            backend="serial",
        )
        addresses = [
            outcome.spec.config_hash() for outcome in report.outcomes
        ]
        target = addresses[0]
        artifact = store.artifact_path(target)
        assert artifact.is_file()
        artifact.unlink()
        pruned = store.prune_stale_index()
        assert pruned == [target]
        # Idempotent: a second pass finds nothing stale.
        assert store.prune_stale_index() == []

    def test_intact_store_prunes_nothing(self, tmp_path):
        store = ArtifactStore(tmp_path)
        run_jobs([scenario_job(spec())], store=store, backend="serial")
        assert store.prune_stale_index() == []

    def test_store_without_index_prunes_nothing(self, tmp_path):
        assert ArtifactStore(tmp_path / "empty").prune_stale_index() == []
