"""Tests for manifests, lab reports and the EXPERIMENTS.md renderer."""

from __future__ import annotations

import json

from repro.lab.executor import run_jobs
from repro.lab.jobs import build_registry
from repro.lab.manifest import (
    render_experiments_markdown,
    render_lab_report,
    summarize_cached,
    write_run_artifacts,
)
from repro.lab.store import ArtifactStore


def run_subset(store, job_ids, workers=1):
    registry = build_registry()
    return run_jobs(
        [registry[job_id] for job_id in job_ids], store=store, workers=workers
    )


class TestWriteRunArtifacts:
    def test_manifest_and_report_files(self, tmp_path):
        store = ArtifactStore(tmp_path / "lab")
        report = run_subset(store, ["E01", "S-t"])
        run_dir = write_run_artifacts(store, report)
        manifest = json.loads((run_dir / "manifest.json").read_text())
        assert manifest["run_id"] == report.run_id
        assert manifest["job_count"] == 2
        assert manifest["failures"] == []
        assert [job["job_id"] for job in manifest["jobs"]] == ["E01", "S-t"]
        for job in manifest["jobs"]:
            assert store.artifact_path(job["config_hash"]).is_file()
        text = (run_dir / "report.md").read_text()
        assert f"run `{report.run_id}`" in text
        assert "## E01" in text
        assert "## S-t" in text

    def test_report_marks_cache_hits(self, tmp_path):
        store = ArtifactStore(tmp_path / "lab")
        run_subset(store, ["E01"])
        report = run_subset(store, ["E01", "S-t"])
        text = render_lab_report(report.outcomes, report.run_id)
        assert "| E01 | experiment | pass" in text
        assert "cache" in text and "executed" in text


class TestExperimentsMarkdown:
    def test_cached_render_is_byte_identical(self, tmp_path):
        store = ArtifactStore(tmp_path / "lab")
        fresh = run_subset(store, ["E01", "E02"], workers=2)
        fresh_text = render_experiments_markdown(
            [outcome.record for outcome in fresh.outcomes]
        )
        cached = run_subset(store, ["E01", "E02"])
        assert cached.cache_hits == 2
        cached_text = render_experiments_markdown(
            [outcome.record for outcome in cached.outcomes]
        )
        assert fresh_text == cached_text
        assert "## E01 — Figure 3" in fresh_text
        assert "| check | paper / expected | measured | status |" in fresh_text
        assert "**FAIL**" not in fresh_text


class TestSummarizeCached:
    def test_empty_store(self, tmp_path):
        store = ArtifactStore(tmp_path / "lab")
        markdown, missing = summarize_cached(store, build_registry())
        assert markdown is None
        assert len(missing) == len(build_registry())

    def test_partial_summary(self, tmp_path):
        store = ArtifactStore(tmp_path / "lab")
        run_subset(store, ["E01", "S-t"])
        markdown, missing = summarize_cached(store, build_registry())
        assert markdown is not None
        assert "## E01" in markdown
        assert "## S-t" in markdown
        assert "E02" in missing
