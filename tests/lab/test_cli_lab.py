"""CLI tests for `repro lab ...`, `--version`, and failure exit codes.

The CLI docstring promises a non-zero exit status whenever an
experiment check fails; these tests pin that contract for both
`repro experiments` and `repro lab run` by swapping in a deliberately
failing runner.
"""

from __future__ import annotations

import pytest

from repro.cli import main, package_version
from repro.report.experiments import ALL_EXPERIMENTS, ExperimentResult


def failing_e01() -> ExperimentResult:
    """A runner whose paper-vs-measured check always fails."""
    result = ExperimentResult("E01", "forced failure", ["value"], [[1]])
    result.check("paper claim that cannot hold", 1, 2)
    return result


class TestVersionFlag:
    def test_version_exits_zero_and_prints(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert f"repro {package_version()}" in capsys.readouterr().out

    def test_package_version_matches_source_fallback(self):
        import repro

        assert package_version() in (repro.__version__, package_version())
        assert package_version()


class TestExperimentsExitCodes:
    def test_failing_check_exits_nonzero(self, monkeypatch, capsys):
        monkeypatch.setitem(ALL_EXPERIMENTS, "E01", failing_e01)
        exit_code = main(["experiments", "--ids", "E01"])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "FAIL" in captured.out
        assert "1 checks FAILED" in captured.err


class TestLabRun:
    def test_run_and_cached_rerun(self, tmp_path, capsys):
        root = str(tmp_path / "lab")
        assert (
            main(["lab", "run", "--ids", "E01,S-t", "--jobs", "1", "--root", root])
            == 0
        )
        first = capsys.readouterr().out
        assert "0 cache hits, 2 executed" in first
        assert "manifest:" in first
        assert (
            main(["lab", "run", "--ids", "E01,S-t", "--jobs", "1", "--root", root])
            == 0
        )
        second = capsys.readouterr().out
        assert "2 cache hits, 0 executed" in second

    def test_ids_are_case_insensitive(self, tmp_path, capsys):
        root = str(tmp_path / "lab")
        exit_code = main(
            ["lab", "run", "--ids", "e01,s-t", "--jobs", "1", "--root", root]
        )
        assert exit_code == 0
        assert "2 jobs" in capsys.readouterr().out

    def test_all_and_ids_are_mutually_exclusive(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "lab",
                    "run",
                    "--all",
                    "--ids",
                    "E01",
                    "--root",
                    str(tmp_path / "lab"),
                ]
            )
        assert excinfo.value.code == 2

    def test_unknown_id_exits_two(self, tmp_path, capsys):
        exit_code = main(
            [
                "lab",
                "run",
                "--ids",
                "E99",
                "--jobs",
                "1",
                "--root",
                str(tmp_path / "lab"),
            ]
        )
        assert exit_code == 2
        assert "unknown job ids: E99" in capsys.readouterr().err

    def test_failing_check_exits_nonzero(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setitem(ALL_EXPERIMENTS, "E01", failing_e01)
        exit_code = main(
            [
                "lab",
                "run",
                "--ids",
                "E01",
                "--jobs",
                "1",
                "--root",
                str(tmp_path / "lab"),
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "FAIL" in captured.out
        assert "failed jobs: E01" in captured.err


class TestLabStatusSummarizeIndex:
    def test_status_before_and_after_run(self, tmp_path, capsys):
        root = str(tmp_path / "lab")
        assert main(["lab", "status", "--root", root]) == 0
        empty = capsys.readouterr().out
        assert "cached:   0/" in empty
        main(["lab", "run", "--ids", "E01", "--jobs", "1", "--root", root])
        capsys.readouterr()
        assert main(["lab", "status", "--root", root]) == 0
        full = capsys.readouterr().out
        assert "cached:   1/" in full
        assert "E01" in full

    def test_summarize_without_cache_fails(self, tmp_path, capsys):
        root = str(tmp_path / "lab")
        assert main(["lab", "summarize", "--root", root]) == 1
        assert "no cached results" in capsys.readouterr().err

    def test_summarize_writes_markdown(self, tmp_path, capsys):
        root = str(tmp_path / "lab")
        main(["lab", "run", "--ids", "E01", "--jobs", "1", "--root", root])
        capsys.readouterr()
        output = tmp_path / "SUM.md"
        assert (
            main(["lab", "summarize", "--root", root, "--output", str(output)])
            == 0
        )
        assert "## E01" in output.read_text()

    def test_index_rebuild(self, tmp_path, capsys):
        root = str(tmp_path / "lab")
        main(["lab", "run", "--ids", "E01,S-t", "--jobs", "1", "--root", root])
        capsys.readouterr()
        assert main(["lab", "index", "--root", root]) == 0
        assert "indexed 2 artifacts" in capsys.readouterr().out
