"""CLI tests for `repro lab ...`, `--version`, and failure exit codes.

The CLI docstring promises a non-zero exit status whenever an
experiment check fails; these tests pin that contract for both
`repro experiments` and `repro lab run` by swapping in a deliberately
failing runner.
"""

from __future__ import annotations

import pytest

from repro.cli import main, package_version
from repro.report.experiments import ALL_EXPERIMENTS, ExperimentResult


def failing_e01() -> ExperimentResult:
    """A runner whose paper-vs-measured check always fails."""
    result = ExperimentResult("E01", "forced failure", ["value"], [[1]])
    result.check("paper claim that cannot hold", 1, 2)
    return result


class TestVersionFlag:
    def test_version_exits_zero_and_prints(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert f"repro {package_version()}" in capsys.readouterr().out

    def test_package_version_matches_source_fallback(self):
        import repro

        assert package_version() in (repro.__version__, package_version())
        assert package_version()


class TestExperimentsExitCodes:
    def test_failing_check_exits_nonzero(self, monkeypatch, capsys):
        monkeypatch.setitem(ALL_EXPERIMENTS, "E01", failing_e01)
        exit_code = main(["experiments", "--ids", "E01"])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "FAIL" in captured.out
        assert "1 checks FAILED" in captured.err


class TestLabRun:
    def test_run_and_cached_rerun(self, tmp_path, capsys):
        root = str(tmp_path / "lab")
        assert (
            main(["lab", "run", "--ids", "E01,S-t", "--jobs", "1", "--root", root])
            == 0
        )
        first = capsys.readouterr().out
        assert "0 cache hits, 2 executed" in first
        assert "manifest:" in first
        assert (
            main(["lab", "run", "--ids", "E01,S-t", "--jobs", "1", "--root", root])
            == 0
        )
        second = capsys.readouterr().out
        assert "2 cache hits, 0 executed" in second

    def test_ids_are_case_insensitive(self, tmp_path, capsys):
        root = str(tmp_path / "lab")
        exit_code = main(
            ["lab", "run", "--ids", "e01,s-t", "--jobs", "1", "--root", root]
        )
        assert exit_code == 0
        assert "2 jobs" in capsys.readouterr().out

    def test_all_and_ids_are_mutually_exclusive(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "lab",
                    "run",
                    "--all",
                    "--ids",
                    "E01",
                    "--root",
                    str(tmp_path / "lab"),
                ]
            )
        assert excinfo.value.code == 2

    def test_unknown_id_exits_two(self, tmp_path, capsys):
        exit_code = main(
            [
                "lab",
                "run",
                "--ids",
                "E99",
                "--jobs",
                "1",
                "--root",
                str(tmp_path / "lab"),
            ]
        )
        assert exit_code == 2
        assert "unknown job ids: E99" in capsys.readouterr().err

    def test_failing_check_exits_nonzero(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setitem(ALL_EXPERIMENTS, "E01", failing_e01)
        exit_code = main(
            [
                "lab",
                "run",
                "--ids",
                "E01",
                "--jobs",
                "1",
                "--root",
                str(tmp_path / "lab"),
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "FAIL" in captured.out
        assert "failed jobs: E01" in captured.err


class TestLabStatusSummarizeIndex:
    def test_status_before_and_after_run(self, tmp_path, capsys):
        root = str(tmp_path / "lab")
        assert main(["lab", "status", "--root", root]) == 0
        empty = capsys.readouterr().out
        assert "cached:   0/" in empty
        main(["lab", "run", "--ids", "E01", "--jobs", "1", "--root", root])
        capsys.readouterr()
        assert main(["lab", "status", "--root", root]) == 0
        full = capsys.readouterr().out
        assert "cached:   1/" in full
        assert "E01" in full

    def test_summarize_without_cache_fails(self, tmp_path, capsys):
        root = str(tmp_path / "lab")
        assert main(["lab", "summarize", "--root", root]) == 1
        assert "no cached results" in capsys.readouterr().err

    def test_summarize_writes_markdown(self, tmp_path, capsys):
        root = str(tmp_path / "lab")
        main(["lab", "run", "--ids", "E01", "--jobs", "1", "--root", root])
        capsys.readouterr()
        output = tmp_path / "SUM.md"
        assert (
            main(["lab", "summarize", "--root", root, "--output", str(output)])
            == 0
        )
        assert "## E01" in output.read_text()

    def test_index_rebuild(self, tmp_path, capsys):
        root = str(tmp_path / "lab")
        main(["lab", "run", "--ids", "E01,S-t", "--jobs", "1", "--root", root])
        capsys.readouterr()
        assert main(["lab", "index", "--root", root]) == 0
        assert "indexed 2 artifacts" in capsys.readouterr().out


class TestLabStatusJson:
    def test_status_json_round_trips(self, tmp_path, capsys):
        import json

        root = str(tmp_path / "lab")
        main(["lab", "run", "--ids", "E01", "--jobs", "1", "--root", root])
        capsys.readouterr()
        assert main(["lab", "status", "--json", "--root", root]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cached"] == 1
        assert payload["root"] == root
        cached_jobs = [job for job in payload["jobs"] if job["cached"]]
        assert [job["job_id"] for job in cached_jobs] == ["E01"]
        assert cached_jobs[0]["all_passed"] is True
        assert "E02" in payload["missing"]
        assert len(payload["runs"]) == 1

    def test_status_json_on_empty_store(self, tmp_path, capsys):
        import json

        root = str(tmp_path / "lab")
        assert main(["lab", "status", "--json", "--root", root]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cached"] == 0
        assert payload["runs"] == []


class TestLabIndexVerify:
    def test_clean_store_exits_zero(self, tmp_path, capsys):
        root = str(tmp_path / "lab")
        main(["lab", "run", "--ids", "E01", "--jobs", "1", "--root", root])
        capsys.readouterr()
        assert main(["lab", "index", "--verify", "--root", root]) == 0
        out = capsys.readouterr().out
        assert "1 ok" in out and "0 corrupt" in out

    def test_corrupt_artifact_exits_one(self, tmp_path, capsys):
        from repro.lab import ArtifactStore

        root = str(tmp_path / "lab")
        main(["lab", "run", "--ids", "E01", "--jobs", "1", "--root", root])
        capsys.readouterr()
        store = ArtifactStore(root)
        victim = next(store.artifacts_dir.glob("*/result.json"))
        victim.write_text("GARBAGE{")
        assert main(["lab", "index", "--verify", "--root", root]) == 1
        assert "[corrupt]" in capsys.readouterr().out


class TestLabRunBackends:
    def test_run_backend_serial(self, tmp_path, capsys):
        root = str(tmp_path / "lab")
        code = main(
            ["lab", "run", "--ids", "E01,S-t", "--backend", "serial",
             "--root", root]
        )
        assert code == 0
        assert "2 executed" in capsys.readouterr().out

    def test_run_backend_spool_with_worker(self, tmp_path, capsys):
        """Full CLI spool round trip: coordinator + one worker thread."""
        import threading

        from repro.lab import serve

        root = tmp_path / "lab"
        worker = threading.Thread(
            target=serve,
            args=(root / "spool",),
            kwargs={"poll": 0.01, "max_idle": 60, "heartbeat": 0.1},
        )
        worker.start()
        try:
            code = main(
                ["lab", "run", "--ids", "E01,S-t", "--backend", "spool",
                 "--spool-timeout", "120", "--root", str(root)]
            )
        finally:
            (root / "spool").mkdir(parents=True, exist_ok=True)
            (root / "spool" / "STOP").touch()
            worker.join(timeout=120)
        assert code == 0
        out = capsys.readouterr().out
        assert "spooled 2 job(s)" in out
        assert "2 executed" in out

    def test_run_backend_spool_timeout_exits_two(self, tmp_path, capsys):
        """No workers + a timeout = a clear error, not a hang."""
        root = str(tmp_path / "lab")
        code = main(
            ["lab", "run", "--ids", "E01", "--backend", "spool",
             "--spool-timeout", "0.2", "--root", root]
        )
        assert code == 2
        assert "timed out" in capsys.readouterr().err

    def test_run_backend_spool_participate_needs_no_workers(
        self, tmp_path, capsys
    ):
        root = str(tmp_path / "lab")
        code = main(
            ["lab", "run", "--ids", "E01,S-t", "--backend", "spool",
             "--participate", "--spool-timeout", "120", "--root", root]
        )
        assert code == 0
        assert "2 executed" in capsys.readouterr().out


class TestLabWorkerCli:
    def test_once_on_missing_dir_exits_two(self, tmp_path, capsys):
        code = main(
            ["lab", "worker", str(tmp_path / "nowhere"), "--once"]
        )
        assert code == 2
        assert "no such spool directory" in capsys.readouterr().err

    def test_once_drains_a_prepared_spool(self, tmp_path, capsys):
        from repro.lab import SpoolRun, build_registry

        spool = SpoolRun(tmp_path / "spool" / "run-1")
        spool.create()
        spool.publish([build_registry()["E01"]])
        code = main(["lab", "worker", str(tmp_path / "spool"), "--once"])
        assert code == 0
        out = capsys.readouterr().out
        assert "worker: executed E01" in out
        assert "1 job(s) executed" in out

    def test_once_on_empty_spool_exits_zero(self, tmp_path, capsys):
        (tmp_path / "spool").mkdir()
        assert main(["lab", "worker", str(tmp_path / "spool"), "--once"]) == 0
        assert "0 job(s) executed" in capsys.readouterr().out

    def test_max_jobs_bounds_the_worker(self, tmp_path, capsys):
        from repro.lab import SpoolRun, build_registry

        registry = build_registry()
        spool = SpoolRun(tmp_path / "spool" / "run-1")
        spool.create()
        spool.publish([registry["E01"], registry["E02"]])
        code = main(
            ["lab", "worker", str(tmp_path / "spool"),
             "--max-jobs", "1", "--poll", "0.01"]
        )
        assert code == 0
        assert "1 job(s) executed" in capsys.readouterr().out
        # One job left for the next bounded worker.
        assert len(list(spool.pending_dir.glob("*.json"))) == 1

    def test_max_jobs_rejects_zero(self, capsys):
        with pytest.raises(SystemExit):
            main(["lab", "worker", "spool", "--max-jobs", "0"])
        assert "must be >= 1" in capsys.readouterr().err


class TestLabMergeCli:
    def test_merge_missing_root_exits_two(self, tmp_path, capsys):
        code = main(
            ["lab", "merge", str(tmp_path / "nowhere"),
             "--root", str(tmp_path / "lab")]
        )
        assert code == 2
        assert "no lab root" in capsys.readouterr().err

    def test_merge_into_itself_exits_two(self, tmp_path, capsys):
        root = str(tmp_path / "lab")
        main(["lab", "run", "--ids", "E01", "--jobs", "1", "--root", root])
        capsys.readouterr()
        assert main(["lab", "merge", root, "--root", root]) == 2
        assert "into itself" in capsys.readouterr().err

    def test_merge_then_status_sees_the_artifacts(self, tmp_path, capsys):
        primary = str(tmp_path / "primary")
        detached = str(tmp_path / "detached")
        main(["lab", "run", "--ids", "E01", "--jobs", "1", "--root", detached])
        capsys.readouterr()
        assert main(["lab", "merge", detached, "--root", primary]) == 0
        out = capsys.readouterr().out
        assert "1 artifact(s) imported" in out
        assert main(["lab", "status", "--root", primary]) == 0
        assert "cached:   1/" in capsys.readouterr().out

    def test_diff_across_merged_runs(self, tmp_path, capsys):
        """The spool workflow end-to-end: two roots, merge, lab diff."""
        import re

        root_a = str(tmp_path / "a")
        root_b = str(tmp_path / "b")
        merged = str(tmp_path / "merged")
        run_ids = []
        for root in (root_a, root_b):
            main(["lab", "run", "--ids", "E01,S-t", "--backend", "serial",
                  "--force", "--root", root])
            match = re.search(r"^run (\S+):", capsys.readouterr().out, re.M)
            assert match is not None
            run_ids.append(match.group(1))
        assert main(["lab", "merge", root_a, "--root", merged]) == 0
        assert main(["lab", "merge", root_b, "--root", merged]) == 0
        capsys.readouterr()
        assert main(["lab", "diff", run_ids[0], run_ids[1],
                     "--root", merged]) == 0
        assert "runs are identical" in capsys.readouterr().out
