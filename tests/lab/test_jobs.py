"""Tests for the job registry and the worker entry point."""

from __future__ import annotations

import pytest

from repro.lab.jobs import (
    ABLATION_BENCHES,
    ABLATION_KIND,
    EXPERIMENT_KIND,
    SWEEP_KIND,
    UnknownJobError,
    build_registry,
    execute_job,
    resolve,
)
from repro.report.experiments import ALL_EXPERIMENTS, registry_entries


class TestRegistry:
    def test_every_experiment_is_registered(self):
        registry = build_registry()
        for experiment_id in ALL_EXPERIMENTS:
            assert registry[experiment_id].kind == EXPERIMENT_KIND

    def test_sweeps_and_ablations_are_registered(self):
        registry = build_registry()
        assert registry["S-lambda"].kind == SWEEP_KIND
        assert registry["S-t"].kind == SWEEP_KIND
        for job_id in ABLATION_BENCHES:
            assert registry[job_id].kind == ABLATION_KIND

    def test_registry_order_is_sorted_and_deterministic(self):
        first = build_registry()
        second = build_registry()
        assert list(first) == sorted(first)
        assert list(first) == list(second)
        assert first == second

    def test_specs_are_hashable_with_distinct_config_hashes(self):
        registry = build_registry()
        specs = set(registry.values())
        assert len(specs) == len(registry)
        hashes = {spec.config_hash("1.0.0") for spec in registry.values()}
        assert len(hashes) == len(registry)

    def test_config_hash_depends_on_version(self):
        spec = build_registry()["E01"]
        assert spec.config_hash("1.0.0") != spec.config_hash("2.0.0")

    def test_config_embeds_source_fingerprint(self):
        from repro.lab.jobs import source_fingerprint

        spec = build_registry()["E01"]
        fingerprint = source_fingerprint()
        assert len(fingerprint) == 64
        assert spec.config("1.0.0")["source_fingerprint"] == fingerprint
        # Stable within a process: the hash (and thus the cache key)
        # cannot drift between scheduling and saving.
        assert source_fingerprint() == fingerprint

    def test_resolve_unknown_id(self):
        with pytest.raises(UnknownJobError):
            resolve("E99")

    def test_titles_come_from_docstrings(self):
        entries = {eid: title for eid, title, _ in registry_entries()}
        assert entries["E01"].startswith("Regenerate the Figure 3")


class TestExecuteJob:
    def test_experiment_payload(self):
        payload = execute_job("E01")
        assert payload["job_id"] == "E01"
        assert payload["kind"] == EXPERIMENT_KIND
        assert payload["all_passed"] is True
        assert payload["headers"][0] == "row"
        assert len(payload["rows"]) == 9
        assert payload["checks"][0]["passed"] is True
        assert payload["elapsed_seconds"] >= 0

    def test_sweep_payload(self):
        payload = execute_job("S-t")
        assert payload["kind"] == SWEEP_KIND
        assert payload["headers"][0] == "lambda"
        assert len(payload["rows"]) == 8
        assert payload["checks"] == []
        assert payload["all_passed"] is True

    def test_ablation_payload(self):
        payload = execute_job("A1")
        assert payload["kind"] == ABLATION_KIND
        assert payload["headers"] == [
            "q",
            "ordered",
            "subsequence",
            "conflict-free",
        ]
        assert [row[0] for row in payload["rows"]] == [1, 2, 4, 8]

    def test_unknown_job(self):
        with pytest.raises(UnknownJobError):
            execute_job("Z1")

    def test_spec_is_executed_as_passed(self):
        # A custom sweep spec computes ITS config, not the registry default.
        from repro.lab.jobs import JobSpec, SWEEP_KIND

        custom = JobSpec(
            "S-lambda",
            SWEEP_KIND,
            "custom sweep",
            (("axis", "lambda"), ("fixed", 4), ("start", 4), ("stop", 6)),
        )
        payload = execute_job(custom)
        assert len(payload["rows"]) == 2  # lambda in {4, 5}, not 3..10

    def test_custom_params_on_experiment_rejected(self):
        # Experiments don't take params yet: a mismatched spec must not
        # silently compute the registry default under a foreign hash.
        from repro.lab.jobs import EXPERIMENT_KIND, JobSpec

        rogue = JobSpec("E01", EXPERIMENT_KIND, "rogue", (("t", 4),))
        with pytest.raises(UnknownJobError):
            execute_job(rogue)
