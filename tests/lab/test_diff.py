"""Cross-run diffing: regressions, benign changes, run-set drift.

Artifacts are content-addressed over params + package version + source
fingerprint, so two runs of identical code share artifacts and can
never diverge; the diff becomes interesting across *versions*.  The
tests simulate that by recording run B under a bumped package version
(distinct artifacts) and surgically rewriting its records — a flipped
check, a moved cycle count — then assert the diff classifies each case
(and that the CLI exits non-zero exactly on regressions).
"""

from __future__ import annotations

import json

import pytest

import repro
from repro.cli import main
from repro.lab import (
    UnknownRunError,
    diff_runs,
    render_diff,
    run_jobs,
    scenario_job,
    write_run_artifacts,
)
from repro.lab.store import ArtifactStore
from repro.scenarios import ComponentSpec, MemorySpec, ScenarioSpec


def demo_spec(q: int = 1) -> ScenarioSpec:
    return ScenarioSpec(
        mapping=ComponentSpec.of("matched-xor", t=3, s=4),
        memory=MemorySpec(t=3, q=q),
        workload=ComponentSpec.of("strided", base=16, stride=12, length=128),
        name="diff-demo",
    )


@pytest.fixture
def store(tmp_path) -> ArtifactStore:
    return ArtifactStore(tmp_path / "lab")


def record_run(store, jobs, monkeypatch=None, version=None) -> str:
    """Execute ``jobs`` as one recorded run, optionally under another
    package version (which gives the run its own artifact files)."""
    if version is not None:
        monkeypatch.setattr(repro, "__version__", version)
    try:
        report = run_jobs(jobs, store=store, workers=1, force=True)
        write_run_artifacts(store, report)
    finally:
        if version is not None:
            monkeypatch.undo()
    return report.run_id


def rewrite_artifacts(store: ArtifactStore, run_id: str, mutate) -> None:
    """Apply ``mutate(record)`` to every artifact of one run."""
    manifest = json.loads(
        (store.runs_dir / run_id / "manifest.json").read_text()
    )
    for job in manifest["jobs"]:
        path = store.artifact_path(job["config_hash"])
        record = json.loads(path.read_text())
        mutate(record)
        path.write_text(json.dumps(record))


def with_check(record, *, passed: bool, measured: str) -> None:
    record["checks"] = [
        {
            "claim": "latency reaches the minimum",
            "expected": "137",
            "measured": measured,
            "passed": passed,
        }
    ]
    record["all_passed"] = passed


class TestDiffRuns:
    def test_identical_runs_have_no_findings(self, store):
        job = scenario_job(demo_spec())
        run_a = record_run(store, [job])
        run_b = record_run(store, [job])
        diff = diff_runs(store, run_a, run_b)
        assert not diff.has_regressions
        assert diff.identical == diff.compared == 1
        assert "identical" in render_diff(diff)

    def test_flipped_check_is_a_regression(self, store, monkeypatch):
        job = scenario_job(demo_spec())
        run_a = record_run(store, [job])
        run_b = record_run(store, [job], monkeypatch, version="1.0.1-test")
        rewrite_artifacts(
            store, run_a, lambda r: with_check(r, passed=True, measured="137")
        )
        rewrite_artifacts(
            store, run_b, lambda r: with_check(r, passed=False, measured="150")
        )
        diff = diff_runs(store, run_a, run_b)
        assert diff.has_regressions
        assert any("regressed" in item.detail for item in diff.regressions)
        assert "REGRESSION" in render_diff(diff)

    def test_moved_cycle_count_is_a_change_not_regression(
        self, store, monkeypatch
    ):
        job = scenario_job(demo_spec())
        run_a = record_run(store, [job])
        run_b = record_run(store, [job], monkeypatch, version="1.0.1-test")

        def bump_latency(record):
            record["rows"] = [
                [cells[0], cells[1] + 1] if cells[0] == "latency" else cells
                for cells in record["rows"]
            ]

        rewrite_artifacts(store, run_b, bump_latency)
        diff = diff_runs(store, run_a, run_b)
        assert not diff.has_regressions
        assert any("table row" in item.detail for item in diff.changes)

    def test_passing_again_is_a_change_not_regression(
        self, store, monkeypatch
    ):
        job = scenario_job(demo_spec())
        run_a = record_run(store, [job])
        run_b = record_run(store, [job], monkeypatch, version="1.0.1-test")
        rewrite_artifacts(
            store, run_a, lambda r: with_check(r, passed=False, measured="150")
        )
        rewrite_artifacts(
            store, run_b, lambda r: with_check(r, passed=True, measured="137")
        )
        diff = diff_runs(store, run_a, run_b)
        assert not diff.has_regressions
        assert any("now passes" in item.detail for item in diff.changes)

    def test_disjoint_job_sets_reported(self, store):
        run_a = record_run(store, [scenario_job(demo_spec(q=1))])
        run_b = record_run(store, [scenario_job(demo_spec(q=2))])
        diff = diff_runs(store, run_a, run_b)
        assert len(diff.removed) == 1 and len(diff.added) == 1
        assert not diff.has_regressions

    def test_unknown_run_raises(self, store):
        run_a = record_run(store, [scenario_job(demo_spec())])
        with pytest.raises(UnknownRunError, match="ghost"):
            diff_runs(store, run_a, "ghost")

    def test_missing_manifest_falls_back_to_sqlite_index(self, store):
        job = scenario_job(demo_spec())
        run_a = record_run(store, [job])
        run_b = record_run(store, [job])
        # Prune run B's directory; its artifacts stay indexed in SQLite.
        (store.runs_dir / run_b / "manifest.json").unlink()
        (store.runs_dir / run_b / "report.md").unlink()
        (store.runs_dir / run_b).rmdir()
        diff = diff_runs(store, run_a, run_b)
        assert diff.compared == 1
        # The index only knows executed jobs, not cache hits — the diff
        # must say its fallback view may be partial.
        assert any("no manifest" in warning for warning in diff.warnings)
        assert "WARNING" in render_diff(diff)


class TestDiffCli:
    def test_identical_runs_exit_zero(self, store, capsys):
        job = scenario_job(demo_spec())
        run_a = record_run(store, [job])
        run_b = record_run(store, [job])
        code = main(["lab", "diff", run_a, run_b, "--root", str(store.root)])
        assert code == 0
        assert "identical" in capsys.readouterr().out

    def test_regression_exits_one(self, store, capsys, monkeypatch):
        job = scenario_job(demo_spec())
        run_a = record_run(store, [job])
        run_b = record_run(store, [job], monkeypatch, version="1.0.1-test")

        def fail(record):
            record["all_passed"] = False

        rewrite_artifacts(store, run_b, fail)
        code = main(["lab", "diff", run_a, run_b, "--root", str(store.root)])
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_unknown_run_exits_two(self, store, capsys):
        run_a = record_run(store, [scenario_job(demo_spec())])
        code = main(["lab", "diff", run_a, "ghost", "--root", str(store.root)])
        assert code == 2
        assert "error:" in capsys.readouterr().err
