"""Tests for the content-addressed artifact store and SQLite index."""

from __future__ import annotations

import json

from repro.lab.jobs import JobSpec
from repro.lab.store import ArtifactStore

SPEC = JobSpec("E01", "experiment", "Figure 3 layout")
PAYLOAD = {
    "job_id": "E01",
    "kind": "experiment",
    "title": "Figure 3: XOR mapping layout",
    "headers": ["row", "mod0"],
    "rows": [[0, 0], [1, 9]],
    "checks": [
        {"claim": "layout", "expected": "x", "measured": "x", "passed": True}
    ],
    "notes": [],
    "all_passed": True,
    "elapsed_seconds": 0.25,
}


class TestArtifactStore:
    def test_miss_then_round_trip(self, tmp_path):
        store = ArtifactStore(tmp_path / "lab")
        config_hash = SPEC.config_hash("1.0.0")
        assert store.load(config_hash) is None
        record = store.save(
            SPEC, PAYLOAD, run_id="r1", package_version="1.0.0"
        )
        loaded = store.load(config_hash)
        assert loaded == record
        assert loaded["rows"] == PAYLOAD["rows"]
        assert loaded["config_hash"] == config_hash
        assert loaded["package_version"] == "1.0.0"

    def test_artifact_is_content_addressed_json(self, tmp_path):
        store = ArtifactStore(tmp_path / "lab")
        record = store.save(
            SPEC, PAYLOAD, run_id="r1", package_version="1.0.0"
        )
        path = store.artifact_path(record["config_hash"])
        assert path.is_file()
        assert json.loads(path.read_text())["job_id"] == "E01"

    def test_version_bump_is_a_cache_miss(self, tmp_path):
        store = ArtifactStore(tmp_path / "lab")
        store.save(SPEC, PAYLOAD, run_id="r1", package_version="1.0.0")
        assert store.load(SPEC.config_hash("9.9.9")) is None

    def test_index_rows(self, tmp_path):
        store = ArtifactStore(tmp_path / "lab")
        store.save(SPEC, PAYLOAD, run_id="r1", package_version="1.0.0")
        store.record_run(
            "r1",
            job_count=1,
            cache_hits=0,
            failures=0,
            elapsed_seconds=0.5,
            package_version="1.0.0",
        )
        results = store.results()
        assert len(results) == 1
        assert results[0]["job_id"] == "E01"
        assert results[0]["all_passed"] == 1
        runs = store.runs()
        assert len(runs) == 1
        assert runs[0]["run_id"] == "r1"
        assert runs[0]["job_count"] == 1

    def test_save_overwrites_same_config(self, tmp_path):
        store = ArtifactStore(tmp_path / "lab")
        store.save(SPEC, PAYLOAD, run_id="r1", package_version="1.0.0")
        changed = dict(PAYLOAD, all_passed=False)
        store.save(SPEC, changed, run_id="r2", package_version="1.0.0")
        assert store.load(SPEC.config_hash("1.0.0"))["all_passed"] is False
        assert len(store.results()) == 1

    def test_rebuild_index_from_artifacts(self, tmp_path):
        store = ArtifactStore(tmp_path / "lab")
        store.save(SPEC, PAYLOAD, run_id="r1", package_version="1.0.0")
        other = JobSpec("S-t", "sweep", "sweep t")
        store.save(
            other,
            dict(PAYLOAD, job_id="S-t", kind="sweep"),
            run_id="r1",
            package_version="1.0.0",
        )
        store.index_path.unlink()
        assert store.results() == []
        assert store.rebuild_index() == 2
        assert [row["job_id"] for row in store.results()] == ["E01", "S-t"]

    def test_corrupt_artifact_is_a_cache_miss(self, tmp_path):
        store = ArtifactStore(tmp_path / "lab")
        record = store.save(
            SPEC, PAYLOAD, run_id="r1", package_version="1.0.0"
        )
        store.artifact_path(record["config_hash"]).write_text("GARBAGE{")
        assert store.load(record["config_hash"]) is None
        # rebuild_index skips it instead of crashing.
        assert store.rebuild_index() == 0

    def test_rebuild_index_restores_run_history(self, tmp_path):
        store = ArtifactStore(tmp_path / "lab")
        run_dir = store.runs_dir / "r1"
        run_dir.mkdir(parents=True)
        (run_dir / "manifest.json").write_text(
            json.dumps(
                {
                    "run_id": "r1",
                    "created_at": "2026-07-29T00:00:00Z",
                    "package_version": "1.0.0",
                    "job_count": 3,
                    "cache_hits": 1,
                    "failures": ["E05"],
                    "elapsed_seconds": 1.5,
                }
            )
        )
        store.rebuild_index()
        runs = store.runs()
        assert len(runs) == 1
        assert runs[0]["run_id"] == "r1"
        assert runs[0]["failures"] == 1
        assert runs[0]["cache_hits"] == 1

    def test_empty_store_queries(self, tmp_path):
        store = ArtifactStore(tmp_path / "lab")
        assert store.results() == []
        assert store.runs() == []
        assert store.rebuild_index() == 0


class TestArtifactBytes:
    def test_raw_bytes_match_the_stored_file(self, tmp_path):
        store = ArtifactStore(tmp_path / "lab")
        record = store.save(
            SPEC, PAYLOAD, run_id="r1", package_version="1.0.0"
        )
        config_hash = record["config_hash"]
        raw = store.artifact_bytes(config_hash)
        assert raw == store.artifact_path(config_hash).read_bytes()
        assert json.loads(raw) == record

    def test_miss_and_corrupt_artifact_are_none(self, tmp_path):
        store = ArtifactStore(tmp_path / "lab")
        assert store.artifact_bytes("f" * 64) is None
        record = store.save(
            SPEC, PAYLOAD, run_id="r1", package_version="1.0.0"
        )
        path = store.artifact_path(record["config_hash"])
        path.write_text("{truncated")
        # Corrupt bytes are never served as a cached result.
        assert store.artifact_bytes(record["config_hash"]) is None


class TestAtomicSave:
    def test_save_leaves_no_temp_files(self, tmp_path):
        store = ArtifactStore(tmp_path / "lab")
        record = store.save(SPEC, PAYLOAD, run_id="r1", package_version="1.0.0")
        artifact_dir = store.artifact_path(record["config_hash"]).parent
        assert [p.name for p in artifact_dir.iterdir()] == ["result.json"]

    def test_interrupted_save_preserves_the_old_artifact(
        self, tmp_path, monkeypatch
    ):
        """A crash mid-save must never leave a truncated result.json.

        The write goes to a temp file first; killing the rename leaves
        the previous (valid) artifact untouched.
        """
        store = ArtifactStore(tmp_path / "lab")
        record = store.save(SPEC, PAYLOAD, run_id="r1", package_version="1.0.0")
        address = record["config_hash"]
        before = store.artifact_path(address).read_bytes()

        def crash_on_replace(src, dst):
            raise OSError("worker killed mid-rename")

        monkeypatch.setattr(
            "repro.lab.store.os.replace", crash_on_replace
        )
        import pytest

        with pytest.raises(OSError, match="mid-rename"):
            store.save(
                SPEC,
                dict(PAYLOAD, all_passed=False),
                run_id="r2",
                package_version="1.0.0",
            )
        monkeypatch.undo()
        # The stored artifact is byte-identical to before the crash and
        # still parses — never truncated, never half-written.
        assert store.artifact_path(address).read_bytes() == before
        assert store.load(address) == record


class TestVerify:
    def run_one(self, tmp_path):
        from repro.lab.executor import run_jobs
        from repro.lab.jobs import build_registry

        store = ArtifactStore(tmp_path / "lab")
        run_jobs(
            [build_registry()["E01"]], store=store, backend="serial"
        )
        return store

    def test_clean_store_verifies_ok(self, tmp_path):
        store = self.run_one(tmp_path)
        report = store.verify()
        assert report["checked"] == 1
        assert len(report["ok"]) == 1
        assert not (
            report["stale"]
            or report["mismatched"]
            or report["corrupt"]
            or report["unverifiable"]
        )

    def test_corrupt_artifact_is_flagged(self, tmp_path):
        store = self.run_one(tmp_path)
        address = store.verify()["ok"][0]
        store.artifact_path(address).write_text("GARBAGE{")
        report = store.verify()
        assert report["corrupt"] == [address]

    def test_misfiled_artifact_is_mismatched(self, tmp_path):
        import shutil

        store = self.run_one(tmp_path)
        address = store.verify()["ok"][0]
        wrong = "0" * 64
        shutil.copytree(
            store.artifact_path(address).parent,
            store.artifacts_dir / wrong,
        )
        report = store.verify()
        assert wrong in report["mismatched"]
        assert address in report["ok"]

    def test_fingerprint_drift_is_stale(self, tmp_path):
        from repro.lab.hashing import canonical_json, config_hash

        store = self.run_one(tmp_path)
        address = store.verify()["ok"][0]
        record = store.load(address)
        record["config"]["source_fingerprint"] = "f" * 64
        # Re-file under the drifted config's recomputed hash so the
        # artifact is internally consistent but from another source tree.
        drifted = config_hash(record["config"])
        record["config_hash"] = drifted
        path = store.artifact_path(drifted)
        path.parent.mkdir(parents=True)
        path.write_text(canonical_json(record))
        report = store.verify()
        assert drifted in report["stale"]
        assert address in report["ok"]

    def test_pre_schema2_record_is_unverifiable(self, tmp_path):
        store = self.run_one(tmp_path)
        address = store.verify()["ok"][0]
        record = store.load(address)
        del record["config"]
        from repro.lab.hashing import canonical_json

        store.artifact_path(address).write_text(canonical_json(record))
        report = store.verify()
        assert report["unverifiable"] == [address]

    def test_verify_empty_store(self, tmp_path):
        store = ArtifactStore(tmp_path / "lab")
        report = store.verify()
        assert report["checked"] == 0
