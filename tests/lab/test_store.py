"""Tests for the content-addressed artifact store and SQLite index."""

from __future__ import annotations

import json

from repro.lab.jobs import JobSpec
from repro.lab.store import ArtifactStore

SPEC = JobSpec("E01", "experiment", "Figure 3 layout")
PAYLOAD = {
    "job_id": "E01",
    "kind": "experiment",
    "title": "Figure 3: XOR mapping layout",
    "headers": ["row", "mod0"],
    "rows": [[0, 0], [1, 9]],
    "checks": [
        {"claim": "layout", "expected": "x", "measured": "x", "passed": True}
    ],
    "notes": [],
    "all_passed": True,
    "elapsed_seconds": 0.25,
}


class TestArtifactStore:
    def test_miss_then_round_trip(self, tmp_path):
        store = ArtifactStore(tmp_path / "lab")
        config_hash = SPEC.config_hash("1.0.0")
        assert store.load(config_hash) is None
        record = store.save(
            SPEC, PAYLOAD, run_id="r1", package_version="1.0.0"
        )
        loaded = store.load(config_hash)
        assert loaded == record
        assert loaded["rows"] == PAYLOAD["rows"]
        assert loaded["config_hash"] == config_hash
        assert loaded["package_version"] == "1.0.0"

    def test_artifact_is_content_addressed_json(self, tmp_path):
        store = ArtifactStore(tmp_path / "lab")
        record = store.save(
            SPEC, PAYLOAD, run_id="r1", package_version="1.0.0"
        )
        path = store.artifact_path(record["config_hash"])
        assert path.is_file()
        assert json.loads(path.read_text())["job_id"] == "E01"

    def test_version_bump_is_a_cache_miss(self, tmp_path):
        store = ArtifactStore(tmp_path / "lab")
        store.save(SPEC, PAYLOAD, run_id="r1", package_version="1.0.0")
        assert store.load(SPEC.config_hash("9.9.9")) is None

    def test_index_rows(self, tmp_path):
        store = ArtifactStore(tmp_path / "lab")
        store.save(SPEC, PAYLOAD, run_id="r1", package_version="1.0.0")
        store.record_run(
            "r1",
            job_count=1,
            cache_hits=0,
            failures=0,
            elapsed_seconds=0.5,
            package_version="1.0.0",
        )
        results = store.results()
        assert len(results) == 1
        assert results[0]["job_id"] == "E01"
        assert results[0]["all_passed"] == 1
        runs = store.runs()
        assert len(runs) == 1
        assert runs[0]["run_id"] == "r1"
        assert runs[0]["job_count"] == 1

    def test_save_overwrites_same_config(self, tmp_path):
        store = ArtifactStore(tmp_path / "lab")
        store.save(SPEC, PAYLOAD, run_id="r1", package_version="1.0.0")
        changed = dict(PAYLOAD, all_passed=False)
        store.save(SPEC, changed, run_id="r2", package_version="1.0.0")
        assert store.load(SPEC.config_hash("1.0.0"))["all_passed"] is False
        assert len(store.results()) == 1

    def test_rebuild_index_from_artifacts(self, tmp_path):
        store = ArtifactStore(tmp_path / "lab")
        store.save(SPEC, PAYLOAD, run_id="r1", package_version="1.0.0")
        other = JobSpec("S-t", "sweep", "sweep t")
        store.save(
            other,
            dict(PAYLOAD, job_id="S-t", kind="sweep"),
            run_id="r1",
            package_version="1.0.0",
        )
        store.index_path.unlink()
        assert store.results() == []
        assert store.rebuild_index() == 2
        assert [row["job_id"] for row in store.results()] == ["E01", "S-t"]

    def test_corrupt_artifact_is_a_cache_miss(self, tmp_path):
        store = ArtifactStore(tmp_path / "lab")
        record = store.save(
            SPEC, PAYLOAD, run_id="r1", package_version="1.0.0"
        )
        store.artifact_path(record["config_hash"]).write_text("GARBAGE{")
        assert store.load(record["config_hash"]) is None
        # rebuild_index skips it instead of crashing.
        assert store.rebuild_index() == 0

    def test_rebuild_index_restores_run_history(self, tmp_path):
        store = ArtifactStore(tmp_path / "lab")
        run_dir = store.runs_dir / "r1"
        run_dir.mkdir(parents=True)
        (run_dir / "manifest.json").write_text(
            json.dumps(
                {
                    "run_id": "r1",
                    "created_at": "2026-07-29T00:00:00Z",
                    "package_version": "1.0.0",
                    "job_count": 3,
                    "cache_hits": 1,
                    "failures": ["E05"],
                    "elapsed_seconds": 1.5,
                }
            )
        )
        store.rebuild_index()
        runs = store.runs()
        assert len(runs) == 1
        assert runs[0]["run_id"] == "r1"
        assert runs[0]["failures"] == 1
        assert runs[0]["cache_hits"] == 1

    def test_empty_store_queries(self, tmp_path):
        store = ArtifactStore(tmp_path / "lab")
        assert store.results() == []
        assert store.runs() == []
        assert store.rebuild_index() == 0
