"""Tests for the cache-aware parallel executor."""

from __future__ import annotations

from repro.lab.executor import default_worker_count, run_jobs
from repro.lab.jobs import build_registry
from repro.lab.store import ArtifactStore

FAST_JOBS = ("E01", "E02", "S-lambda", "S-t")


def fast_specs():
    registry = build_registry()
    return [registry[job_id] for job_id in FAST_JOBS]


class TestRunJobs:
    def test_parallel_then_fully_cached(self, tmp_path):
        store = ArtifactStore(tmp_path / "lab")
        first = run_jobs(fast_specs(), store=store, workers=2)
        assert first.cache_hits == 0
        assert first.executed == len(FAST_JOBS)
        assert first.all_passed

        second = run_jobs(fast_specs(), store=store, workers=2)
        assert second.cache_hits == len(FAST_JOBS)
        assert second.executed == 0
        # Cached records carry the exact same tables.
        for before, after in zip(first.outcomes, second.outcomes):
            assert before.record["rows"] == after.record["rows"]
            assert before.record["config_hash"] == after.record["config_hash"]

    def test_deterministic_job_id_order(self, tmp_path):
        store = ArtifactStore(tmp_path / "lab")
        specs = list(reversed(fast_specs()))
        report = run_jobs(specs, store=store, workers=2)
        assert [o.spec.job_id for o in report.outcomes] == sorted(FAST_JOBS)

    def test_serial_matches_parallel(self, tmp_path):
        parallel_store = ArtifactStore(tmp_path / "parallel")
        serial_store = ArtifactStore(tmp_path / "serial")
        parallel = run_jobs(fast_specs(), store=parallel_store, workers=2)
        serial = run_jobs(fast_specs(), store=serial_store, workers=1)
        for left, right in zip(parallel.outcomes, serial.outcomes):
            assert left.record["rows"] == right.record["rows"]
            assert left.record["checks"] == right.record["checks"]

    def test_force_re_executes(self, tmp_path):
        store = ArtifactStore(tmp_path / "lab")
        run_jobs(fast_specs()[:1], store=store, workers=1)
        forced = run_jobs(fast_specs()[:1], store=store, workers=1, force=True)
        assert forced.cache_hits == 0
        assert forced.executed == 1

    def test_partial_cache_resumes(self, tmp_path):
        store = ArtifactStore(tmp_path / "lab")
        run_jobs(fast_specs()[:2], store=store, workers=1)
        report = run_jobs(fast_specs(), store=store, workers=2)
        assert report.cache_hits == 2
        assert report.executed == 2

    def test_progress_lines(self, tmp_path):
        store = ArtifactStore(tmp_path / "lab")
        lines: list[str] = []
        run_jobs(fast_specs()[:2], store=store, workers=1, progress=lines.append)
        assert len(lines) == 2
        assert all("PASS" in line for line in lines)
        cached_lines: list[str] = []
        run_jobs(
            fast_specs()[:2], store=store, workers=1, progress=cached_lines.append
        )
        assert all("[cached]" in line for line in cached_lines)

    def test_runs_are_recorded(self, tmp_path):
        store = ArtifactStore(tmp_path / "lab")
        report = run_jobs(fast_specs()[:2], store=store, workers=1)
        runs = store.runs()
        assert len(runs) == 1
        assert runs[0]["run_id"] == report.run_id
        assert runs[0]["job_count"] == 2


class TestRaisingJobs:
    def test_raising_job_is_a_failed_outcome_not_a_crash(
        self, tmp_path, monkeypatch
    ):
        from repro.report.experiments import ALL_EXPERIMENTS

        def explode():
            raise RuntimeError("simulator blew up")

        explode.__doc__ = "Explodes."
        monkeypatch.setitem(ALL_EXPERIMENTS, "E01", explode)
        store = ArtifactStore(tmp_path / "lab")
        report = run_jobs(
            [build_registry()["E01"], build_registry()["E02"]],
            store=store,
            workers=1,
        )
        assert not report.all_passed
        assert [o.spec.job_id for o in report.failures] == ["E01"]
        failed = report.outcomes[0].record
        assert "RuntimeError: simulator blew up" in failed["checks"][0]["measured"]
        # The failure is not cached — and E02 still completed and cached.
        assert store.load(build_registry()["E01"].config_hash()) is None
        assert store.load(build_registry()["E02"].config_hash()) is not None
        # The run is still recorded despite the crash.
        assert len(store.runs()) == 1

    def test_raising_job_retries_on_next_run(self, tmp_path, monkeypatch):
        from repro.report.experiments import ALL_EXPERIMENTS

        def explode():
            raise RuntimeError("transient")

        explode.__doc__ = "Explodes."
        monkeypatch.setitem(ALL_EXPERIMENTS, "E01", explode)
        store = ArtifactStore(tmp_path / "lab")
        spec = build_registry()["E01"]
        assert not run_jobs([spec], store=store, workers=1).all_passed
        monkeypatch.undo()
        healed = run_jobs([spec], store=store, workers=1)
        assert healed.all_passed
        assert healed.executed == 1


class TestDefaults:
    def test_default_worker_count_positive(self):
        assert default_worker_count() >= 1


class TestRunIds:
    def test_run_id_embeds_pid(self, tmp_path):
        """Concurrent coordinators can't collide: the PID is in the id."""
        import os

        store = ArtifactStore(tmp_path / "lab")
        report = run_jobs(fast_specs()[:1], store=store, workers=1)
        assert f"-p{os.getpid()}-" in report.run_id

    def test_run_ids_unique_within_process(self, tmp_path):
        store = ArtifactStore(tmp_path / "lab")
        ids = {
            run_jobs(fast_specs()[:1], store=store, workers=1).run_id
            for _ in range(3)
        }
        assert len(ids) == 3

    def test_caller_supplied_run_id_is_honoured(self, tmp_path):
        """Submit-without-block front ends name the run before executing."""
        from repro.lab.executor import new_run_id

        store = ArtifactStore(tmp_path / "lab")
        promised = new_run_id()
        report = run_jobs(
            fast_specs()[:1],
            store=store,
            backend="serial",
            run_id=promised,
        )
        assert report.run_id == promised
        assert report.outcomes[0].record["run_id"] == promised
        assert promised in {row["run_id"] for row in store.runs()}


class TestBackendParameter:
    def test_serial_backend_by_name(self, tmp_path):
        store = ArtifactStore(tmp_path / "lab")
        report = run_jobs(fast_specs(), store=store, backend="serial")
        assert report.all_passed
        assert report.executed == len(FAST_JOBS)

    def test_backend_instance(self, tmp_path):
        from repro.lab.backends import SerialBackend

        store = ArtifactStore(tmp_path / "lab")
        report = run_jobs(fast_specs()[:2], store=store, backend=SerialBackend())
        assert report.all_passed

    def test_unknown_backend_name_raises(self, tmp_path):
        import pytest

        from repro.lab.backends import UnknownBackendError

        store = ArtifactStore(tmp_path / "lab")
        with pytest.raises(UnknownBackendError):
            run_jobs(fast_specs()[:1], store=store, backend="quantum")

    def test_fully_cached_batch_never_touches_the_backend(self, tmp_path):
        """A 100%-hit batch must not spin up (or hang on) any backend."""

        class ExplodingBackend:
            name = "exploding"

            def run(self, pending, *, run_id):
                raise AssertionError("backend invoked for a cached batch")
                yield  # pragma: no cover - makes this a generator

        store = ArtifactStore(tmp_path / "lab")
        run_jobs(fast_specs()[:2], store=store, workers=1)
        report = run_jobs(
            fast_specs()[:2], store=store, backend=ExplodingBackend()
        )
        assert report.cache_hits == 2
