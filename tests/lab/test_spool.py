"""Tests for the filesystem-spool sharding protocol.

Covers the wire format (JobSpec JSON round-trips, including whole
program-scenario specs), atomic claiming, worker execution, the
coordinator's stale-claim requeue (crash injection: a worker that
claims a job and dies), and the worker serve loop.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

import pytest

from repro.lab.backends import JobFailure
from repro.lab.executor import run_jobs
from repro.lab.jobs import build_registry, experiment_spec, scenario_job
from repro.lab.spool import (
    CLOSED_MARKER,
    SpoolBackend,
    SpoolError,
    SpoolRun,
    claim_next,
    execute_claim,
    job_from_json,
    job_to_json,
    serve,
)
from repro.lab.store import ArtifactStore

FAST_JOBS = ("E01", "E02", "S-lambda", "S-t")


def fast_specs():
    registry = build_registry()
    return [registry[job_id] for job_id in FAST_JOBS]


class TestWireFormat:
    def test_registry_specs_round_trip(self):
        for spec in build_registry().values():
            restored = job_from_json(job_to_json(spec))
            assert restored == spec
            assert restored.config_hash() == spec.config_hash()

    def test_parameterised_experiment_round_trips(self):
        spec = experiment_spec("E03", lambda_exponent=8, t=4)
        restored = job_from_json(job_to_json(spec))
        assert restored == spec
        assert restored.config_hash() == spec.config_hash()

    def test_program_scenario_spec_round_trips(self):
        from repro.scenarios import load_scenarios

        text = Path("examples/scenario_daxpy_program.json").read_text()
        spec = scenario_job(load_scenarios(text)[0])
        restored = job_from_json(job_to_json(spec))
        assert restored == spec
        assert restored.config_hash() == spec.config_hash()
        # The embedded scenario JSON survives verbatim.
        assert dict(restored.params)["spec"] == dict(spec.params)["spec"]

    def test_restored_spec_executes_identically(self):
        from repro.lab.jobs import execute_job

        spec = build_registry()["S-t"]
        original = execute_job(spec)
        restored = execute_job(job_from_json(job_to_json(spec)))
        assert original["rows"] == restored["rows"]
        assert original["checks"] == restored["checks"]

    @pytest.mark.parametrize(
        "text",
        [
            "GARBAGE{",
            "[1,2,3]",
            '{"job_id": "E01"}',
            '{"job_id": "E01", "kind": "experiment", "title": "t", '
            '"params": [["k", {"nested": "dict"}]]}',
        ],
    )
    def test_junk_raises_spool_error(self, text):
        with pytest.raises(SpoolError):
            job_from_json(text)


class TestClaiming:
    def test_claim_moves_exactly_one_pending_file(self, tmp_path):
        spool = SpoolRun(tmp_path / "run")
        spool.create()
        published = spool.publish(fast_specs()[:2])
        assert len(published) == 2
        claim = claim_next(spool.root)
        assert claim is not None
        assert claim.parent == spool.claimed_dir
        assert len(list(spool.pending_dir.glob("*.json"))) == 1
        second = claim_next(spool.root)
        assert second is not None and second != claim
        assert claim_next(spool.root) is None

    def test_claim_on_missing_dir_is_none(self, tmp_path):
        assert claim_next(tmp_path / "nowhere") is None

    def test_execute_claim_writes_done_and_drops_claim(self, tmp_path):
        spool = SpoolRun(tmp_path / "run")
        spool.create()
        spool.publish([build_registry()["S-t"]])
        claim = claim_next(spool.root)
        job_id = execute_claim(spool.root, claim, heartbeat=0.05)
        assert job_id == "S-t"
        assert not claim.exists()
        done = list(spool.done_dir.glob("*.json"))
        assert len(done) == 1
        body = json.loads(done[0].read_text())
        assert body["job_id"] == "S-t"
        assert body["payload"]["all_passed"] is True

    def test_execute_claim_on_vanished_file_returns_none(self, tmp_path):
        spool = SpoolRun(tmp_path / "run")
        spool.create()
        missing = spool.claimed_dir / "0000__gone.json"
        assert execute_claim(spool.root, missing) is None

    def test_corrupt_spooled_job_becomes_failure_not_worker_crash(
        self, tmp_path
    ):
        spool = SpoolRun(tmp_path / "run")
        spool.create()
        (spool.pending_dir / "0000__bad.json").write_text("GARBAGE{")
        claim = claim_next(spool.root)
        assert execute_claim(spool.root, claim) is None
        body = json.loads((spool.done_dir / "0000__bad.json").read_text())
        assert "failure" in body


class TestStaleRequeue:
    def test_fresh_claims_stay_put(self, tmp_path):
        spool = SpoolRun(tmp_path / "run")
        spool.create()
        spool.publish(fast_specs()[:1])
        claim_next(spool.root)
        assert spool.requeue_stale(stale_after=60.0) == []
        assert len(list(spool.claimed_dir.glob("*.json"))) == 1

    def test_dead_claims_are_requeued(self, tmp_path):
        spool = SpoolRun(tmp_path / "run")
        spool.create()
        spool.publish(fast_specs()[:1])
        claim = claim_next(spool.root)
        past = time.time() - 3600
        os.utime(claim, (past, past))
        requeued = spool.requeue_stale(stale_after=1.0)
        assert requeued == [claim.name]
        assert not claim.exists()
        assert (spool.pending_dir / claim.name).is_file()

    def test_done_claims_are_never_requeued(self, tmp_path):
        spool = SpoolRun(tmp_path / "run")
        spool.create()
        spool.publish(fast_specs()[:1])
        claim = claim_next(spool.root)
        name = claim.name
        execute_claim(spool.root, claim)
        # Simulate the claim file lingering (crash after the done write).
        (spool.claimed_dir / name).write_text("leftover")
        past = time.time() - 3600
        os.utime(spool.claimed_dir / name, (past, past))
        assert spool.requeue_stale(stale_after=1.0) == []

    def test_coordinator_clock_ahead_does_not_requeue_live_claims(
        self, tmp_path, monkeypatch
    ):
        # Regression: claim ages were measured against the coordinator's
        # time.time(), so a coordinator clock running ahead of the spool
        # filesystem's clock (NFS server, drifted container) requeued
        # every live claim the moment it was made.
        import repro.lab.spool as spool_module

        spool = SpoolRun(tmp_path / "run")
        spool.create()
        spool.publish(fast_specs()[:1])
        claim = claim_next(spool.root)
        real_time = time.time
        monkeypatch.setattr(
            spool_module.time, "time", lambda: real_time() + 3600.0
        )
        assert spool.requeue_stale(stale_after=60.0) == []
        assert claim.exists()

    def test_coordinator_clock_behind_still_requeues_dead_claims(
        self, tmp_path, monkeypatch
    ):
        # The mirror failure: a coordinator clock running behind the
        # spool's clock computed negative ages and stranded dead
        # workers' claims forever.
        import repro.lab.spool as spool_module

        spool = SpoolRun(tmp_path / "run")
        spool.create()
        spool.publish(fast_specs()[:1])
        claim = claim_next(spool.root)
        past = time.time() - 120
        os.utime(claim, (past, past))
        real_time = time.time
        monkeypatch.setattr(
            spool_module.time, "time", lambda: real_time() - 3600.0
        )
        assert spool.requeue_stale(stale_after=60.0) == [claim.name]
        assert (spool.pending_dir / claim.name).is_file()

    def test_spool_now_falls_back_to_local_clock(self, tmp_path):
        # An unwritable spool root cannot host the probe; the local
        # clock is the only clock left.
        spool = SpoolRun(tmp_path / "gone")
        before = time.time()
        now = spool._spool_now()
        assert abs(now - before) < 60.0


class TestCrashInjection:
    def test_dead_worker_claim_is_requeued_and_batch_completes(self, tmp_path):
        """A worker claims a job and dies; the batch still converges.

        Deterministic sequence: the coordinator publishes but does not
        participate, so the "dead worker" (this test) is guaranteed to
        win the first claim.  It never heartbeats and never writes a
        result; the coordinator requeues the stale claim and a real
        worker — started only after the death — finishes the batch.
        """
        store = ArtifactStore(tmp_path / "lab")
        spool_dir = tmp_path / "spool"
        backend = SpoolBackend(
            spool_dir,
            participate=False,
            poll_interval=0.01,
            stale_after=0.3,
            timeout=120,
        )
        reports = {}

        def coordinate():
            reports["report"] = run_jobs(
                fast_specs(), store=store, backend=backend
            )

        thread = threading.Thread(target=coordinate)
        thread.start()
        try:
            # Act as the dying worker: claim the first published job.
            deadline = time.monotonic() + 30
            claim = None
            while claim is None and time.monotonic() < deadline:
                for run_root in spool_dir.glob("*"):
                    claim = claim_next(run_root)
                    if claim is not None:
                        break
                else:
                    time.sleep(0.01)
            assert claim is not None, "no job ever became claimable"
            # ...and die: no heartbeat, no done file.  Freeze the claim's
            # mtime in the past so it is immediately stale.
            past = time.time() - 3600
            os.utime(claim, (past, past))

            # Stop the real worker once the coordinator has collected
            # everything (instead of waiting out max_idle).
            def stop_when_collected():
                thread.join()
                (spool_dir / "STOP").touch()

            threading.Thread(target=stop_when_collected, daemon=True).start()
            # A real worker now serves the spool: it drains the three
            # still-pending jobs plus the requeued stale one.
            stats = serve(
                spool_dir, poll=0.01, max_idle=60, heartbeat=0.1
            )
            assert stats.executed == len(FAST_JOBS)
        finally:
            thread.join(timeout=120)
        assert not thread.is_alive()
        report = reports["report"]
        assert report.all_passed
        assert report.executed == len(FAST_JOBS)
        assert [o.spec.job_id for o in report.outcomes] == sorted(FAST_JOBS)

    def test_timeout_raises_instead_of_hanging(self, tmp_path):
        store = ArtifactStore(tmp_path / "lab")
        backend = SpoolBackend(
            tmp_path / "spool",
            participate=False,
            poll_interval=0.01,
            timeout=0.2,
        )
        with pytest.raises(SpoolError, match="timed out"):
            run_jobs(fast_specs()[:1], store=store, backend=backend)

    def test_unreadable_done_file_fails_the_job_not_the_batch(self, tmp_path):
        from repro.lab.spool import _completion

        assert _completion(None) == JobFailure(
            "worker wrote an unreadable done file"
        )
        assert _completion({"no": "payload"}) == JobFailure(
            "worker done file carries no payload"
        )


class TestWorkers:
    def test_two_workers_share_a_16_job_batch(self, tmp_path):
        """Acceptance: 16 jobs, two concurrent workers, batch completes."""
        specs = [
            experiment_spec("E03", lambda_exponent=exp, t=t)
            for exp in (5, 6, 7, 8)
            for t in (1, 2, 3, 4)
        ]
        assert len(specs) == 16
        store = ArtifactStore(tmp_path / "lab")
        spool_dir = tmp_path / "spool"
        workers = [
            threading.Thread(
                target=serve,
                args=(spool_dir,),
                kwargs={"poll": 0.01, "max_idle": 60, "heartbeat": 0.1},
            )
            for _ in range(2)
        ]
        for worker in workers:
            worker.start()
        try:
            report = run_jobs(
                specs,
                store=store,
                backend=SpoolBackend(
                    spool_dir, poll_interval=0.01, timeout=120
                ),
            )
        finally:
            (spool_dir / "STOP").touch()
            for worker in workers:
                worker.join(timeout=120)
        assert report.all_passed
        assert report.executed == 16
        assert len({o.record["config_hash"] for o in report.outcomes}) == 16
        # Acceptance: the spooled batch's report is byte-identical to a
        # serial run of the same 16 jobs on a fresh store.
        from repro.lab.manifest import render_lab_report

        serial = run_jobs(
            specs, store=ArtifactStore(tmp_path / "serial-lab"), backend="serial"
        )
        assert render_lab_report(report.outcomes, "PINNED") == render_lab_report(
            serial.outcomes, "PINNED"
        )

    def test_serve_once_on_empty_dir(self, tmp_path):
        stats = serve(tmp_path / "empty", once=True)
        assert stats.executed == 0

    def test_serve_once_drains_an_open_run(self, tmp_path):
        spool = SpoolRun(tmp_path / "spool" / "run-1")
        spool.create()
        spool.publish(fast_specs()[:2])
        lines: list[str] = []
        stats = serve(
            tmp_path / "spool", poll=0.01, once=True, progress=lines.append
        )
        assert stats.executed == 2
        assert len(lines) == 2
        assert len(list(spool.done_dir.glob("*.json"))) == 2

    def test_serve_exits_when_only_abandoned_runs_remain(self, tmp_path):
        """A lingering CLOSED run means a dead coordinator: don't serve it."""
        spool = SpoolRun(tmp_path / "spool" / "run-1")
        spool.create()
        spool.publish(fast_specs()[:2])
        spool.close()
        started = time.monotonic()
        stats = serve(tmp_path / "spool", poll=0.01)
        assert time.monotonic() - started < 30
        # Nothing was claimed: the results could never be collected.
        assert stats.executed == 0
        assert len(list(spool.pending_dir.glob("*.json"))) == 2

    def test_serve_max_idle_bounds_waiting(self, tmp_path):
        started = time.monotonic()
        stats = serve(tmp_path / "never-created", poll=0.01, max_idle=0.1)
        assert stats.executed == 0
        assert time.monotonic() - started < 5

    def test_serve_max_jobs_is_a_deterministic_bound(self, tmp_path):
        """`--max-jobs N` exits after exactly N executions, mid-run."""
        spool = SpoolRun(tmp_path / "spool" / "run-1")
        spool.create()
        spool.publish(fast_specs()[:3])
        stats = serve(tmp_path / "spool", poll=0.01, max_jobs=2)
        assert stats.executed == 2
        # The third job is still claimable for the next worker.
        assert len(list(spool.pending_dir.glob("*.json"))) == 1
        assert len(list(spool.done_dir.glob("*.json"))) == 2

    def test_serve_max_jobs_beats_the_idle_timeout(self, tmp_path):
        """The bound fires on the Nth execution, not on going idle."""
        spool = SpoolRun(tmp_path / "spool" / "run-1")
        spool.create()
        spool.publish(fast_specs()[:2])
        stats = serve(
            tmp_path / "spool", poll=0.01, max_idle=120, max_jobs=2
        )
        # With pending work exhausted exactly at the bound, the worker
        # exits immediately instead of idling out the 120 seconds.
        assert stats.executed == 2

    def test_worker_reports_failures_via_done_files(self, tmp_path, monkeypatch):
        from repro.report.experiments import ALL_EXPERIMENTS

        def explode():
            raise RuntimeError("worker-side crash")

        explode.__doc__ = "Explodes."
        monkeypatch.setitem(ALL_EXPERIMENTS, "E01", explode)
        spool = SpoolRun(tmp_path / "run")
        spool.create()
        spool.publish([build_registry()["E01"]])
        stats = serve(spool.root, poll=0.01, once=True)
        assert stats.executed == 1
        body = json.loads(next(spool.done_dir.glob("*.json")).read_text())
        assert body["failure"] == "RuntimeError: worker-side crash"

    def test_closed_marker(self, tmp_path):
        spool = SpoolRun(tmp_path / "run")
        spool.create()
        assert not spool.closed
        spool.close()
        assert spool.closed
        assert (spool.root / CLOSED_MARKER).exists()

    def test_successful_batch_destroys_its_spool_run(self, tmp_path):
        """Spool state is transient: a collected batch leaves no run dir,
        so the same workers can serve the next batch."""
        store = ArtifactStore(tmp_path / "lab")
        spool_dir = tmp_path / "spool"
        backend = SpoolBackend(
            spool_dir, participate=True, poll_interval=0.01, timeout=120
        )
        run_jobs(fast_specs()[:2], store=store, backend=backend)
        assert list(spool_dir.glob("*")) == []

    def test_worker_serves_two_consecutive_batches(self, tmp_path):
        """The regression the manual drive caught: a worker must survive
        batch 1 completing and go on to serve batch 2."""
        store = ArtifactStore(tmp_path / "lab")
        spool_dir = tmp_path / "spool"
        worker = threading.Thread(
            target=serve,
            args=(spool_dir,),
            kwargs={"poll": 0.01, "max_idle": 30, "heartbeat": 0.1},
        )
        worker.start()
        try:
            backend = SpoolBackend(spool_dir, poll_interval=0.01, timeout=120)
            first = run_jobs(
                fast_specs()[:2], store=store, backend=backend
            )
            second = run_jobs(
                fast_specs()[2:], store=store, backend=backend
            )
        finally:
            (spool_dir / "STOP").touch()
            worker.join(timeout=120)
        assert not worker.is_alive()
        assert first.all_passed and second.all_passed
        assert first.executed == 2 and second.executed == 2
