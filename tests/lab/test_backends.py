"""Backend-equivalence suite: serial, pool and spool are indistinguishable.

The executor's contract is that a backend decides *where* jobs run and
nothing else — same batch, same store state, byte-identical rendered
reports.  These tests pin that across all three shipped backends, plus
the resolution rules and the failure-reporting contract.
"""

from __future__ import annotations

import pytest

from repro.lab.backends import (
    BACKEND_NAMES,
    ExecutorBackend,
    JobFailure,
    ProcessPoolBackend,
    SerialBackend,
    UnknownBackendError,
    describe_error,
    resolve_backend,
)
from repro.lab.executor import run_jobs
from repro.lab.jobs import build_registry
from repro.lab.manifest import render_lab_report, write_run_artifacts
from repro.lab.spool import SpoolBackend
from repro.lab.store import ArtifactStore

FAST_JOBS = ("E01", "E02", "S-lambda", "S-t")


def fast_specs():
    registry = build_registry()
    return [registry[job_id] for job_id in FAST_JOBS]


def make_backend(name: str, tmp_path):
    """One fresh instance of each shipped backend, spool self-serving."""
    if name == "serial":
        return SerialBackend()
    if name == "pool":
        return ProcessPoolBackend(2)
    return SpoolBackend(
        tmp_path / "spool", participate=True, poll_interval=0.01, timeout=60
    )


class TestBackendEquivalence:
    def test_reports_byte_identical_across_backends(self, tmp_path):
        rendered = {}
        records = {}
        for name in BACKEND_NAMES:
            store = ArtifactStore(tmp_path / name / "lab")
            report = run_jobs(
                fast_specs(),
                store=store,
                backend=make_backend(name, tmp_path / name),
            )
            assert report.all_passed, name
            assert report.cache_hits == 0
            assert report.executed == len(FAST_JOBS)
            assert [o.spec.job_id for o in report.outcomes] == sorted(FAST_JOBS)
            # Render with a pinned run id: everything else in the report
            # must be byte-identical no matter which backend executed.
            rendered[name] = render_lab_report(report.outcomes, "PINNED")
            records[name] = report.outcomes
        assert rendered["serial"] == rendered["pool"] == rendered["spool"]
        for left, right in zip(records["serial"], records["spool"]):
            assert left.record["rows"] == right.record["rows"]
            assert left.record["checks"] == right.record["checks"]
            assert left.record["config_hash"] == right.record["config_hash"]

    def test_written_report_md_identical_modulo_run_id(self, tmp_path):
        bodies = {}
        for name in ("serial", "spool"):
            store = ArtifactStore(tmp_path / name / "lab")
            report = run_jobs(
                fast_specs(),
                store=store,
                backend=make_backend(name, tmp_path / name),
            )
            run_dir = write_run_artifacts(store, report)
            lines = (run_dir / "report.md").read_text().splitlines()
            assert report.run_id in lines[0]
            bodies[name] = "\n".join(lines[1:])
        assert bodies["serial"] == bodies["spool"]

    def test_spool_artifacts_content_identical_to_serial(self, tmp_path):
        hashes = {}
        for name in ("serial", "spool"):
            store = ArtifactStore(tmp_path / name / "lab")
            run_jobs(
                fast_specs(),
                store=store,
                backend=make_backend(name, tmp_path / name),
            )
            hashes[name] = sorted(
                path.parent.name for path in store.artifacts_dir.glob("*/result.json")
            )
        # Content addressing: identical results => identical addresses.
        assert hashes["serial"] == hashes["spool"]

    def test_cross_backend_cache_hits(self, tmp_path):
        """Artifacts written by one backend are cache hits for another."""
        store = ArtifactStore(tmp_path / "lab")
        first = run_jobs(fast_specs(), store=store, backend="serial")
        assert first.executed == len(FAST_JOBS)
        second = run_jobs(
            fast_specs(),
            store=store,
            backend=SpoolBackend(
                tmp_path / "spool", participate=True, poll_interval=0.01
            ),
        )
        assert second.cache_hits == len(FAST_JOBS)
        assert second.executed == 0


class TestFailureContract:
    def test_serial_backend_yields_jobfailure(self, monkeypatch):
        from repro.report.experiments import ALL_EXPERIMENTS

        def explode():
            raise RuntimeError("simulator blew up")

        explode.__doc__ = "Explodes."
        monkeypatch.setitem(ALL_EXPERIMENTS, "E01", explode)
        completions = dict(
            SerialBackend().run(
                [build_registry()["E01"], build_registry()["E02"]], run_id="r"
            )
        )
        results = {spec.job_id: result for spec, result in completions.items()}
        assert results["E01"] == JobFailure("RuntimeError: simulator blew up")
        assert isinstance(results["E02"], dict)
        assert results["E02"]["all_passed"]

    def test_describe_error_is_the_canonical_rendering(self):
        assert describe_error(ValueError("bad")) == JobFailure("ValueError: bad")

    def test_run_jobs_failed_outcome_identical_across_backends(
        self, tmp_path, monkeypatch
    ):
        from repro.report.experiments import ALL_EXPERIMENTS

        def explode():
            raise RuntimeError("boom")

        explode.__doc__ = "Explodes."
        monkeypatch.setitem(ALL_EXPERIMENTS, "E01", explode)
        spec = build_registry()["E01"]
        measured = {}
        # pool is excluded: subprocess workers don't see the monkeypatch.
        for name in ("serial", "spool"):
            store = ArtifactStore(tmp_path / name / "lab")
            report = run_jobs(
                [spec], store=store, backend=make_backend(name, tmp_path / name)
            )
            assert not report.all_passed
            check = report.outcomes[0].record["checks"][0]
            measured[name] = check["measured"]
            # Failures are never cached, whichever backend reported them.
            assert store.load(spec.config_hash()) is None
        assert measured["serial"] == measured["spool"] == "RuntimeError: boom"


class TestResolveBackend:
    def test_none_is_the_pool_default(self):
        backend = resolve_backend(None, workers=3)
        assert isinstance(backend, ProcessPoolBackend)
        assert backend.workers == 3

    def test_names_resolve(self, tmp_path):
        assert isinstance(resolve_backend("serial"), SerialBackend)
        assert isinstance(resolve_backend("pool"), ProcessPoolBackend)
        spool = resolve_backend("spool", store=ArtifactStore(tmp_path / "lab"))
        assert isinstance(spool, SpoolBackend)
        assert spool.spool_dir == tmp_path / "lab" / "spool"

    def test_instances_pass_through(self):
        backend = SerialBackend()
        assert resolve_backend(backend) is backend

    def test_unknown_name_raises(self):
        with pytest.raises(UnknownBackendError, match="unknown backend"):
            resolve_backend("carrier-pigeon")

    def test_spool_without_store_raises(self):
        with pytest.raises(UnknownBackendError, match="needs a store"):
            resolve_backend("spool")

    def test_pool_rejects_nonpositive_workers(self):
        with pytest.raises(ValueError, match="workers must be >= 1"):
            ProcessPoolBackend(0)

    def test_all_shipped_backends_satisfy_the_protocol(self, tmp_path):
        for name in BACKEND_NAMES:
            assert isinstance(
                make_backend(name, tmp_path), ExecutorBackend
            ), name
