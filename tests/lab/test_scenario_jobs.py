"""Lab integration of scenario specs and parameterised experiments.

Pins the two acceptance guarantees of the scenario API redesign:

* every registered component round-trips through a lab job (the spec
  travels verbatim in ``JobSpec.params``), and
* two specs differing in *any* parameter produce distinct lab config
  hashes — distinct design points can never share a cache entry.
"""

from __future__ import annotations

import pytest

from repro.lab import (
    SCENARIO_KIND,
    JobSpec,
    UnknownJobError,
    build_registry,
    execute_job,
    experiment_spec,
    run_jobs,
    scenario_job,
)
from repro.lab.store import ArtifactStore
from repro.scenarios import ComponentSpec, MemorySpec, ScenarioSpec


def matched_spec(**overrides) -> ScenarioSpec:
    fields = dict(
        mapping=ComponentSpec.of("matched-xor", t=3, s=4),
        memory=MemorySpec(t=3),
        workload=ComponentSpec.of("strided", base=16, stride=12, length=128),
        name="lab-demo",
    )
    fields.update(overrides)
    return ScenarioSpec(**fields)


class TestScenarioJobs:
    def test_job_carries_spec_verbatim(self):
        spec = matched_spec()
        job = scenario_job(spec)
        assert job.kind == SCENARIO_KIND
        assert dict(job.params)["spec"] == spec.to_json()
        assert job.job_id.startswith("SC-lab-demo-")

    def test_execute_returns_normalised_metrics(self):
        payload = execute_job(scenario_job(matched_spec()))
        assert payload["all_passed"]
        metrics = {row[0]: row[1] for row in payload["rows"]}
        assert metrics["latency"] == 137
        assert metrics["conflict_free"] is True

    def test_any_param_change_changes_the_config_hash(self):
        spec = matched_spec()
        base_hash = scenario_job(spec).config_hash()
        for path, value in [
            ("memory.q", 2),
            ("memory.qp", 2),
            ("memory.t", 2),
            ("memory.address_bits", 24),
            ("mapping.params.s", 5),
            ("workload.params.stride", 13),
            ("workload.params.base", 17),
            ("workload.params.length", 64),
            ("drive.params.mode", "ordered"),
        ]:
            changed = scenario_job(spec.replace(path, value))
            assert changed.config_hash() != base_hash, path

    def test_same_name_different_specs_get_distinct_job_ids(self):
        job_a = scenario_job(matched_spec())
        job_b = scenario_job(matched_spec(memory=MemorySpec(t=3, q=2)))
        assert job_a.job_id != job_b.job_id

    def test_jobs_cache_per_design_point(self, tmp_path):
        store = ArtifactStore(tmp_path / "lab")
        jobs = [
            scenario_job(matched_spec()),
            scenario_job(matched_spec(memory=MemorySpec(t=3, q=2))),
        ]
        first = run_jobs(jobs, store=store, workers=1)
        assert first.executed == 2 and first.all_passed
        second = run_jobs(jobs, store=store, workers=1)
        assert second.cache_hits == 2

    def test_spec_param_missing_is_clear_error(self):
        rogue = JobSpec("SC-rogue", SCENARIO_KIND, "rogue", ())
        with pytest.raises(UnknownJobError, match="no 'spec' param"):
            execute_job(rogue)

    def test_bad_spec_json_is_configuration_error(self):
        from repro.errors import ConfigurationError

        rogue = JobSpec(
            "SC-rogue", SCENARIO_KIND, "rogue", (("spec", "{not json"),)
        )
        with pytest.raises(ConfigurationError):
            execute_job(rogue)


class TestParameterisedExperiments:
    def test_no_overrides_is_the_registry_entry(self):
        assert experiment_spec("E03") == build_registry()["E03"]

    def test_overrides_fold_into_id_and_hash(self):
        default = experiment_spec("E03")
        custom = experiment_spec("E03", lambda_exponent=6)
        assert custom.job_id == "E03[lambda_exponent=6]"
        assert custom.config_hash() != default.config_hash()

    def test_distinct_override_values_hash_apart(self):
        a = experiment_spec("E03", lambda_exponent=6)
        b = experiment_spec("E03", lambda_exponent=8)
        assert a.config_hash() != b.config_hash()
        assert a.job_id != b.job_id

    def test_overridden_job_actually_computes_the_design_point(self):
        payload = execute_job(experiment_spec("E03", lambda_exponent=6))
        assert payload["all_passed"]
        # L=64: the conflict-free minimum drops to T + 64 + 1 = 73.
        assert any(73 in row for row in payload["rows"])

    def test_unknown_kwarg_rejected_at_spec_time(self):
        with pytest.raises(UnknownJobError, match="does not accept"):
            experiment_spec("E03", warp_factor=9)

    def test_unknown_experiment_rejected(self):
        with pytest.raises(UnknownJobError):
            experiment_spec("E99", t=1)

    def test_rogue_spec_rejected_at_execute_time(self):
        # A hand-built spec bypassing experiment_spec() still cannot
        # smuggle an unknown kwarg past the signature check.
        from repro.lab import EXPERIMENT_KIND

        rogue = JobSpec("E01", EXPERIMENT_KIND, "rogue", (("t", 4),))
        with pytest.raises(UnknownJobError):
            execute_job(rogue)

    def test_parameterised_jobs_cache_separately(self, tmp_path):
        store = ArtifactStore(tmp_path / "lab")
        jobs = [
            experiment_spec("E16", length=256),
            experiment_spec("E16", length=128),
        ]
        report = run_jobs(jobs, store=store, workers=1)
        assert report.executed == 2 and report.all_passed
        rerun = run_jobs(jobs, store=store, workers=1)
        assert rerun.cache_hits == 2
