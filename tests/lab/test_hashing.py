"""Tests for canonical hashing and the artifact cell codecs."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.lab.hashing import (
    ArtifactCodingError,
    canonical_json,
    config_hash,
    decode_cell,
    decode_rows,
    encode_cell,
    encode_rows,
)


class TestCanonicalJson:
    def test_key_order_is_irrelevant(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json(
            {"a": 2, "b": 1}
        )

    def test_compact_and_ascii(self):
        assert canonical_json({"a": [1, 2]}) == '{"a":[1,2]}'

    def test_hash_is_stable_and_sensitive(self):
        base = {"job_id": "E01", "kind": "experiment", "params": {}}
        assert config_hash(base) == config_hash(dict(base))
        changed = dict(base, params={"t": 4})
        assert config_hash(changed) != config_hash(base)

    def test_version_changes_the_hash(self):
        one = config_hash({"job_id": "E01", "package_version": "1.0.0"})
        two = config_hash({"job_id": "E01", "package_version": "1.0.1"})
        assert one != two


class TestCellCodec:
    @pytest.mark.parametrize(
        "value", [0, -3, 1.5, True, False, "text", None, 0.9140625]
    )
    def test_primitives_round_trip(self, value):
        encoded = encode_cell(value)
        assert decode_cell(encoded) == value
        assert type(decode_cell(encoded)) is type(value)

    def test_fraction_round_trips(self):
        value = Fraction(31, 32)
        assert decode_cell(encode_cell(value)) == value

    def test_tuple_round_trips(self):
        value = (2, 5, "x", Fraction(1, 2))
        assert decode_cell(encode_cell(value)) == value

    def test_rows_round_trip(self):
        rows = [[1, 2.5, True, "s"], [Fraction(3, 4), (1, 2)]]
        assert decode_rows(encode_rows(rows)) == rows

    def test_unknown_type_is_rejected(self):
        with pytest.raises(ArtifactCodingError):
            encode_cell(object())

    def test_non_finite_float_is_rejected(self):
        with pytest.raises(ArtifactCodingError):
            encode_cell(float("nan"))

    def test_unknown_tag_is_rejected(self):
        with pytest.raises(ArtifactCodingError):
            decode_cell({"__mystery__": 1})
