"""Tests for the table renderers."""

from __future__ import annotations

from repro.report.tables import format_cell, render_markdown, render_table


class TestFormatCell:
    def test_bool(self):
        assert format_cell(True) == "yes"
        assert format_cell(False) == "no"

    def test_float_precision(self):
        assert format_cell(0.9142857) == "0.9143"
        assert format_cell(137.0) == "137"

    def test_str_passthrough(self):
        assert format_cell("hello") == "hello"
        assert format_cell(42) == "42"


class TestRenderTable:
    def test_alignment(self):
        table = render_table(["a", "long header"], [[1, 2], [333, 4]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:2])
        assert "long header" in lines[0]

    def test_title(self):
        table = render_table(["a"], [[1]], title="My Table")
        assert table.splitlines()[0] == "My Table"

    def test_empty_rows(self):
        table = render_table(["col"], [])
        assert "col" in table


class TestRenderMarkdown:
    def test_structure(self):
        markdown = render_markdown(["a", "b"], [[1, True]], title="T")
        lines = markdown.splitlines()
        assert lines[0] == "### T"
        assert lines[2] == "| a | b |"
        assert lines[3] == "|---|---|"
        assert lines[4] == "| 1 | yes |"
