"""Integration tests: every experiment runner passes all its checks.

These are the repository's strongest end-to-end statements — each runner
regenerates one artifact of the paper and compares it against the paper's
stated values in-process.
"""

from __future__ import annotations

import pytest

from repro.report.experiments import ALL_EXPERIMENTS


@pytest.mark.parametrize("experiment_id", sorted(ALL_EXPERIMENTS))
def test_experiment_passes(experiment_id):
    result = ALL_EXPERIMENTS[experiment_id]()
    failures = [check for check in result.checks if not check.passed]
    assert not failures, "\n".join(
        f"{check.claim}: expected {check.expected}, measured {check.measured}"
        for check in failures
    )


def test_every_experiment_has_checks():
    for experiment_id, runner in ALL_EXPERIMENTS.items():
        result = runner()
        assert result.checks, f"{experiment_id} asserts nothing"
        assert result.rows, f"{experiment_id} renders nothing"


def test_result_table_renderable():
    from repro.report.tables import render_markdown, render_table

    result = ALL_EXPERIMENTS["E01"]()
    assert render_table(result.headers, result.rows)
    assert render_markdown(result.headers, result.rows, title=result.title)
