"""Tests for the EXPERIMENTS.md generator script."""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path


def load_run_all():
    path = Path(__file__).resolve().parents[2] / "benchmarks" / "run_all.py"
    spec = importlib.util.spec_from_file_location("run_all", path)
    module = importlib.util.module_from_spec(spec)
    assert spec.loader is not None
    spec.loader.exec_module(module)
    return module


class TestRunAll:
    def test_writes_full_report(self, tmp_path, capsys):
        run_all = load_run_all()
        target = tmp_path / "EXPERIMENTS.md"
        exit_code = run_all.main(str(target))
        assert exit_code == 0
        text = target.read_text()
        # One section per experiment, every check passing.
        for experiment_id in ("E01", "E07", "E09", "E15"):
            assert f"## {experiment_id}" in text
        assert "**FAIL**" not in text
        assert "| check | paper / expected | measured | status |" in text
        progress = capsys.readouterr().out
        assert progress.count("PASS") >= 15
