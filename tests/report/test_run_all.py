"""Tests for the EXPERIMENTS.md generator script."""

from __future__ import annotations

import importlib.util
from pathlib import Path


def load_run_all():
    path = Path(__file__).resolve().parents[2] / "benchmarks" / "run_all.py"
    spec = importlib.util.spec_from_file_location("run_all", path)
    module = importlib.util.module_from_spec(spec)
    assert spec.loader is not None
    spec.loader.exec_module(module)
    return module


class TestRunAll:
    def test_writes_full_report(self, tmp_path, capsys):
        run_all = load_run_all()
        target = tmp_path / "EXPERIMENTS.md"
        lab_root = str(tmp_path / "lab")
        exit_code = run_all.main(str(target), lab_root=lab_root)
        assert exit_code == 0
        text = target.read_text()
        # One section per experiment, every check passing.
        for experiment_id in ("E01", "E07", "E09", "E15"):
            assert f"## {experiment_id}" in text
        assert "**FAIL**" not in text
        assert "| check | paper / expected | measured | status |" in text
        progress = capsys.readouterr().out
        assert progress.count("PASS") >= 15

        # A second generation is served from the artifact cache and is
        # byte-identical to the freshly computed report.
        warm_target = tmp_path / "EXPERIMENTS2.md"
        assert run_all.main(str(warm_target), lab_root=lab_root) == 0
        warm_progress = capsys.readouterr().out
        assert warm_progress.count("[cached]") >= 15
        assert warm_target.read_bytes() == target.read_bytes()
