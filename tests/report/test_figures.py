"""Tests for the ASCII figure helpers."""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.report.figures import bar_chart, latency_profile, sparkline


class TestBarChart:
    def test_scaling(self):
        chart = bar_chart(["a", "bb"], [1.0, 2.0], width=10)
        lines = chart.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10
        assert lines[0].startswith("a ")
        assert lines[1].startswith("bb")

    def test_values_shown(self):
        chart = bar_chart(["x"], [0.914], unit=" eta")
        assert "0.914 eta" in chart

    def test_zero_values(self):
        chart = bar_chart(["x", "y"], [0.0, 0.0])
        assert "#" not in chart

    def test_validation(self):
        with pytest.raises(ReproError):
            bar_chart(["a"], [1.0, 2.0])
        with pytest.raises(ReproError):
            bar_chart([], [])
        with pytest.raises(ReproError):
            bar_chart(["a"], [-1.0])
        with pytest.raises(ReproError):
            bar_chart(["a"], [1.0], width=0)


class TestSparkline:
    def test_monotone_series(self):
        line = sparkline([1, 2, 3, 4, 5, 6, 7, 8])
        assert line == "▁▂▃▄▅▆▇█"

    def test_flat_series(self):
        assert sparkline([3, 3, 3]) == "▁▁▁"

    def test_length(self):
        assert len(sparkline(list(range(20)))) == 20

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            sparkline([])


class TestLatencyProfile:
    def test_window_signature(self):
        profile = latency_profile(
            [0, 1, 2], [137, 137, 261], minimum=137, width=20
        )
        lines = profile.splitlines()
        assert "minimum (T+L+1) = 137" in lines[0]
        bars = [line.split("|")[1] for line in lines[1:]]
        assert "=" in bars[0] and "#" not in bars[0]
        assert "#" in bars[2] and "=" not in bars[2]

    def test_from_real_simulation(self, matched_planner, matched_system):
        from repro.core.vector import VectorAccess

        families = list(range(6))
        latencies = [
            matched_system.run_plan(
                matched_planner.plan(VectorAccess(16, 3 * (1 << x), 128))
            ).latency
            for x in families
        ]
        profile = latency_profile(families, latencies, minimum=137)
        # Families 0..4 at the floor, family 5 above it.
        assert profile.count("=") > profile.count("#") > 0

    def test_validation(self):
        with pytest.raises(ReproError):
            latency_profile([0], [1, 2], minimum=10)
        with pytest.raises(ReproError):
            latency_profile([0], [10], minimum=0)
