"""Tests for the result-bus arbiters."""

from __future__ import annotations

from repro.memory.arbiter import FifoArbiter, RoundRobinArbiter
from repro.memory.module import InFlightRequest, MemoryModule


def module_with_ready(index: int, ready: int) -> MemoryModule:
    module = MemoryModule(index, 2, 1, 2)
    request = InFlightRequest(element_index=index, address=0, module=index)
    module.output_queue.append((ready, request))
    return module


def empty_module(index: int) -> MemoryModule:
    return MemoryModule(index, 2, 1, 1)


class TestFifoArbiter:
    def test_oldest_first(self):
        modules = [
            module_with_ready(0, ready=5),
            module_with_ready(1, ready=3),
            empty_module(2),
        ]
        assert FifoArbiter().grant(modules, cycle=6) == 1

    def test_tie_breaks_by_module_index(self):
        modules = [module_with_ready(0, 4), module_with_ready(1, 4)]
        assert FifoArbiter().grant(modules, cycle=5) == 0

    def test_none_when_nothing_ready(self):
        modules = [empty_module(0), empty_module(1)]
        assert FifoArbiter().grant(modules, cycle=9) is None

    def test_not_ready_yet_skipped(self):
        modules = [module_with_ready(0, ready=9)]
        assert FifoArbiter().grant(modules, cycle=8) is None
        assert FifoArbiter().grant(modules, cycle=9) == 0


class TestRoundRobinArbiter:
    def test_rotates(self):
        arbiter = RoundRobinArbiter()
        modules = [module_with_ready(0, 1), module_with_ready(1, 1)]
        first = arbiter.grant(modules, cycle=2)
        assert first == 0
        # Re-arm module 0's queue to keep both ready.
        modules[0] = module_with_ready(0, 1)
        second = arbiter.grant(modules, cycle=3)
        assert second == 1

    def test_wraps_past_end(self):
        arbiter = RoundRobinArbiter()
        modules = [module_with_ready(0, 1), empty_module(1)]
        assert arbiter.grant(modules, cycle=2) == 0
        modules[0] = module_with_ready(0, 1)
        assert arbiter.grant(modules, cycle=3) == 0

    def test_none_when_empty(self):
        arbiter = RoundRobinArbiter()
        assert arbiter.grant([empty_module(0)], cycle=5) is None
