"""Tests for the memory-subsystem configuration."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.mappings.linear import MatchedXorMapping
from repro.memory.config import MemoryConfig


class TestValidation:
    def test_negative_t(self):
        with pytest.raises(ConfigurationError):
            MemoryConfig(MatchedXorMapping(3, 4), -1)

    def test_too_few_modules(self):
        with pytest.raises(ConfigurationError):
            MemoryConfig(MatchedXorMapping(3, 4), 4)

    def test_zero_input_capacity(self):
        with pytest.raises(ConfigurationError):
            MemoryConfig(MatchedXorMapping(3, 4), 3, input_capacity=0)

    def test_zero_output_capacity(self):
        with pytest.raises(ConfigurationError):
            MemoryConfig(MatchedXorMapping(3, 4), 3, output_capacity=0)


class TestProperties:
    def test_service_ratio(self, matched_config):
        assert matched_config.service_ratio == 8

    def test_matched_detection(self, matched_config, section_config):
        assert matched_config.is_matched
        assert not section_config.is_matched

    def test_module_count(self, section_config):
        assert section_config.module_count == 64

    def test_describe_mentions_geometry(self, matched_config):
        text = matched_config.describe()
        assert "M=8" in text and "T=8" in text


class TestConstructors:
    def test_matched_constructor(self):
        config = MemoryConfig.matched(t=3, s=4)
        assert config.module_count == 8
        assert config.mapping.s == 4

    def test_unmatched_constructor(self):
        config = MemoryConfig.unmatched(t=3, s=4, y=9)
        assert config.module_count == 64
        assert config.mapping.y == 9

    def test_buffer_parameters_forwarded(self):
        config = MemoryConfig.matched(t=3, s=4, input_capacity=2, output_capacity=3)
        assert config.input_capacity == 2
        assert config.output_capacity == 3
