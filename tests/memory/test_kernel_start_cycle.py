"""Staggered stream injection: ``KernelStream.start_cycle`` semantics.

A stream with ``start_cycle=c`` is invisible to its port before
kernel-relative cycle ``c``; waiting for the start is deliberate delay,
not an issue stall.  The defining equivalence: delaying a solo stream
by ``d`` cycles shifts its whole timing profile by exactly ``d``.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.core.planner import AccessPlanner
from repro.core.vector import VectorAccess
from repro.memory.config import MemoryConfig
from repro.memory.kernel import KernelStream, MemoryKernel

CONFIG = MemoryConfig.matched(t=3, s=4, input_capacity=2)
PLANNER = AccessPlanner(CONFIG.mapping, 3)


def requests(base: int = 0, stride: int = 12, length: int = 32):
    return PLANNER.plan(VectorAccess(base, stride, length)).request_stream()


class TestValidation:
    @pytest.mark.parametrize("bad", [0, -1, -100])
    def test_start_cycle_must_be_at_least_one(self, bad):
        stream = KernelStream.of("a", requests(), start_cycle=bad)
        with pytest.raises(ConfigurationError, match="start_cycle"):
            MemoryKernel(CONFIG).run([stream])

    @pytest.mark.parametrize("bad", [True, 1.5, "2", None])
    def test_start_cycle_must_be_an_integer(self, bad):
        stream = KernelStream(
            "a", tuple(requests()), frozenset(), None, bad
        )
        with pytest.raises(ConfigurationError, match="start_cycle"):
            MemoryKernel(CONFIG).run([stream])


class TestSemantics:
    def test_default_is_cycle_one(self):
        assert KernelStream.of("a", requests()).start_cycle == 1
        run = MemoryKernel(CONFIG).run([KernelStream.of("a", requests())])
        assert run.streams[0].start_cycle == 1

    def test_explicit_cycle_one_matches_default(self):
        plain = MemoryKernel(CONFIG).run([KernelStream.of("a", requests())])
        explicit = MemoryKernel(CONFIG).run(
            [KernelStream.of("a", requests(), start_cycle=1)]
        )
        assert explicit == plain

    @pytest.mark.parametrize("delay", [5, 17, 64])
    def test_solo_stream_shifts_rigidly(self, delay):
        base = MemoryKernel(CONFIG).run([KernelStream.of("a", requests())])
        late = MemoryKernel(CONFIG).run(
            [KernelStream.of("a", requests(), start_cycle=1 + delay)]
        )
        a, b = base.streams[0], late.streams[0]
        assert b.first_issue_cycle == a.first_issue_cycle + delay
        assert b.last_delivery_cycle == a.last_delivery_cycle + delay
        assert b.issue_stall_cycles == a.issue_stall_cycles
        assert late.total_cycles == base.total_cycles + delay
        for before, after in zip(a.requests, b.requests):
            assert after.issue_cycle == before.issue_cycle + delay
            assert after.start_cycle == before.start_cycle + delay
            assert after.delivery_cycle == before.delivery_cycle + delay

    def test_waiting_for_start_is_not_an_issue_stall(self):
        late = MemoryKernel(CONFIG).run(
            [KernelStream.of("a", requests(), start_cycle=40)]
        )
        stream = late.streams[0]
        assert stream.first_issue_cycle >= 40
        # A solo conflict-free stream stalls as little delayed as not.
        base = MemoryKernel(CONFIG).run([KernelStream.of("a", requests())])
        assert stream.issue_stall_cycles == base.streams[0].issue_stall_cycles

    def test_stagger_can_dodge_port_interleave(self):
        # Two streams sharing one port: started together they interleave
        # on the shared address bus; starting "b" after "a" finishes
        # must leave "a" exactly as if it ran alone.
        solo = MemoryKernel(CONFIG).run(
            [KernelStream.of("a", requests(0), port=0)]
        )
        handoff = solo.streams[0].last_delivery_cycle + 1
        run = MemoryKernel(CONFIG).run(
            [
                KernelStream.of("a", requests(0), port=0),
                KernelStream.of(
                    "b", requests(1), port=0, start_cycle=handoff
                ),
            ]
        )
        assert run.streams[0] == solo.streams[0]
        assert run.streams[1].first_issue_cycle >= handoff

    def test_staggered_streams_still_deliver_everything(self):
        run = MemoryKernel(CONFIG).run(
            [
                KernelStream.of("a", requests(0)),
                KernelStream.of("b", requests(1), start_cycle=9),
                KernelStream.of("c", requests(2), start_cycle=23),
            ]
        )
        assert run.aggregate_elements == 3 * 32
        for stream in run.streams:
            assert stream.element_count == 32
            assert stream.first_issue_cycle >= stream.start_cycle
