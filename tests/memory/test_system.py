"""Tests for the cycle-accurate memory system — the timing contract."""

from __future__ import annotations

import pytest

from repro.core.planner import AccessPlanner
from repro.core.vector import VectorAccess
from repro.errors import SimulationError
from repro.memory.arbiter import RoundRobinArbiter
from repro.memory.config import MemoryConfig
from repro.memory.system import MemorySystem


class TestLatencyContract:
    def test_single_request(self, matched_system):
        result = matched_system.run_stream([(0, 0)])
        # Issue at 1, at module at 2, busy 2..9, delivered at 10 = T+1+1.
        assert result.latency == 8 + 1 + 1
        assert result.conflict_free

    def test_conflict_free_vector_is_t_plus_l_plus_1(
        self, matched_planner, matched_system
    ):
        plan = matched_planner.plan(VectorAccess(16, 12, 128))
        result = matched_system.run_plan(plan)
        assert result.latency == 8 + 128 + 1
        assert result.conflict_free
        assert result.issue_stall_cycles == 0
        assert result.wait_count == 0

    def test_static_and_dynamic_verdicts_agree(
        self, matched_planner, matched_system
    ):
        """The simulator and the Section 2 predicate must agree."""
        for family in range(7):
            for base in (0, 5, 1000):
                plan = matched_planner.plan(
                    VectorAccess(base, 3 * (1 << family), 128)
                )
                result = matched_system.run_plan(plan)
                assert result.conflict_free == plan.conflict_free, (
                    family,
                    base,
                )

    def test_worst_case_single_module(self):
        """All requests to one module: throughput 1 per T cycles."""
        config = MemoryConfig.matched(t=3, s=4, input_capacity=4)
        system = MemorySystem(config)
        # Stride 2**(s+t) = 128: every element in the same module.
        plan = AccessPlanner(config.mapping, 3).plan(
            VectorAccess(0, 128, 32), mode="ordered"
        )
        result = system.run_plan(plan)
        # Steady state: one element per 8 cycles.
        assert result.latency >= 32 * 8
        assert not result.conflict_free
        assert result.module_busy_cycles[config.mapping.module_of(0)] == 256

    def test_empty_stream_rejected(self, matched_system):
        with pytest.raises(SimulationError):
            matched_system.run_stream([])


class TestDeliveryOrder:
    def test_conflict_free_delivers_in_issue_order(
        self, matched_planner, matched_system
    ):
        plan = matched_planner.plan(VectorAccess(16, 12, 64))
        result = matched_system.run_plan(plan)
        assert result.delivery_order() == [
            index for index, _ in plan.request_stream()
        ]

    def test_deliveries_one_per_cycle(self, matched_planner, matched_system):
        plan = matched_planner.plan(VectorAccess(16, 12, 64))
        result = matched_system.run_plan(plan)
        deliveries = sorted(r.delivery_cycle for r in result.requests)
        assert deliveries == list(range(10, 10 + 64))


class TestBuffering:
    def test_more_buffers_reduce_latency_of_conflicting_stream(self):
        vector = VectorAccess(16, 12, 128)
        latencies = {}
        for q in (1, 2, 4):
            config = MemoryConfig.matched(t=3, s=4, input_capacity=q)
            planner = AccessPlanner(config.mapping, 3)
            plan = planner.plan(vector, mode="ordered")
            latencies[q] = MemorySystem(config).run_plan(plan).latency
        assert latencies[1] >= latencies[2] >= latencies[4]

    def test_subsequence_order_bounded_excess(self):
        """Section 3.1/[15]: q=2, q'=1 gives latency <= 2T + L."""
        config = MemoryConfig.matched(
            t=3, s=4, input_capacity=2, output_capacity=1
        )
        planner = AccessPlanner(config.mapping, 3)
        system = MemorySystem(config)
        for family in range(5):
            for base in (0, 3, 500):
                plan = planner.plan(
                    VectorAccess(base, 5 * (1 << family), 128),
                    mode="subsequence",
                )
                result = system.run_plan(plan)
                assert result.latency <= 2 * 8 + 128, (family, base)


class TestArbiters:
    def test_round_robin_same_latency_for_conflict_free(
        self, matched_planner, matched_config
    ):
        plan = matched_planner.plan(VectorAccess(16, 12, 128))
        fifo_result = MemorySystem(matched_config).run_plan(plan)
        rr_result = MemorySystem(
            matched_config, arbiter=RoundRobinArbiter()
        ).run_plan(plan)
        assert fifo_result.latency == rr_result.latency == 137


class TestStores:
    def test_store_stream_same_timing(self, matched_planner, matched_system):
        plan = matched_planner.plan(VectorAccess(16, 12, 128))
        result = matched_system.run_stream(
            plan.request_stream(), stores=range(128)
        )
        assert result.latency == 137
        assert all(request.is_store for request in result.requests)


class TestGuard:
    def test_livelock_guard_generous(self, matched_system):
        # A legitimate fully-serialised stream must not trip the guard.
        stream = [(i, i * 128) for i in range(16)]
        result = matched_system.run_stream(stream)
        assert result.latency > 16 * 8 // 2  # ran to completion


class TestResultRecords:
    def test_per_request_latency(self, matched_planner, matched_system):
        plan = matched_planner.plan(VectorAccess(0, 1, 128))
        result = matched_system.run_plan(plan)
        for request in result.requests:
            assert request.latency == 8 + 2  # T busy + bus both ways

    def test_cycles_per_element(self, matched_planner, matched_system):
        plan = matched_planner.plan(VectorAccess(0, 1, 128))
        result = matched_system.run_plan(plan)
        assert result.cycles_per_element == pytest.approx(137 / 128)

    def test_excess_latency(self, matched_planner, matched_system):
        plan = matched_planner.plan(VectorAccess(0, 1, 128))
        result = matched_system.run_plan(plan)
        assert result.excess_latency(8) == 0
