"""Tests for the multi-port memory system."""

from __future__ import annotations

import pytest

from repro.core.planner import AccessPlanner
from repro.core.vector import VectorAccess
from repro.errors import ConfigurationError, SimulationError
from repro.memory.config import MemoryConfig
from repro.memory.multiport import MultiPortMemorySystem, PortAssignment
from repro.memory.multistream import MultiStreamMemorySystem


@pytest.fixture
def unmatched_config():
    """M = 64 modules: enough headroom for two ports at T = 8."""
    return MemoryConfig.unmatched(t=3, s=4, y=9, input_capacity=2)


@pytest.fixture
def unmatched_planner(unmatched_config):
    return AccessPlanner(unmatched_config.mapping, 3)


class TestConstruction:
    def test_ports_positive(self, unmatched_config):
        with pytest.raises(ConfigurationError):
            MultiPortMemorySystem(unmatched_config, 0)

    def test_ports_bounded_by_modules(self):
        config = MemoryConfig.matched(t=3, s=4)
        with pytest.raises(ConfigurationError):
            MultiPortMemorySystem(config, 9)

    def test_empty_streams_rejected(self, unmatched_config):
        system = MultiPortMemorySystem(unmatched_config, 2)
        with pytest.raises(SimulationError):
            system.run_streams([])


class TestPortAssignment:
    def test_round_robin_binding(self):
        assignment = PortAssignment(ports=2, streams=5)
        assert [assignment.port_of(i) for i in range(5)] == [0, 1, 0, 1, 0]


class TestThroughput:
    def test_single_stream_single_port_matches_plain(self, unmatched_config,
                                                     unmatched_planner):
        from repro.memory.system import MemorySystem

        plan = unmatched_planner.plan(VectorAccess(0, 12, 128))
        multi = MultiPortMemorySystem(unmatched_config, 1).run_streams(
            [plan.request_stream()]
        )
        plain = MemorySystem(unmatched_config).run_plan(plan)
        assert multi.streams[0].latency == plain.latency

    def test_two_ports_double_throughput_for_disjoint_streams(
        self, unmatched_config, unmatched_planner
    ):
        """Two conflict-free streams in different sections: two ports
        finish in about half the single-bus time."""
        # Base addresses 2**9 apart land in different sections for the
        # whole access (stride 16 stays inside a block of 2**9 words).
        a = unmatched_planner.plan(VectorAccess(0, 16, 32)).request_stream()
        b = unmatched_planner.plan(
            VectorAccess(1 << 9, 16, 32)
        ).request_stream()

        single = MultiStreamMemorySystem(unmatched_config).run_streams([a, b])
        dual = MultiPortMemorySystem(unmatched_config, 2).run_streams([a, b])
        assert dual.total_cycles < single.total_cycles
        assert dual.total_cycles <= 32 + 8 + 1 + 8  # near one stream's time

    def test_same_module_streams_do_not_speed_up(self, unmatched_config,
                                                 unmatched_planner):
        """Identical address patterns on two ports still serialise in the
        modules: ports widen buses, not module bandwidth."""
        a = unmatched_planner.plan(VectorAccess(0, 12, 64)).request_stream()
        dual = MultiPortMemorySystem(unmatched_config, 2).run_streams([a, a])
        waits = sum(stream.wait_count for stream in dual.streams)
        stalls = sum(stream.issue_stall_cycles for stream in dual.streams)
        assert waits + stalls > 0

    def test_all_elements_delivered(self, unmatched_config, unmatched_planner):
        streams = [
            unmatched_planner.plan(
                VectorAccess(base, 12, 64)
            ).request_stream()
            for base in (0, 512, 1024)
        ]
        result = MultiPortMemorySystem(unmatched_config, 2).run_streams(
            streams
        )
        assert result.aggregate_elements == 192
        assert all(stream.last_delivery_cycle > 0 for stream in result.streams)
