"""Tests for the single-module state machine."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.memory.module import InFlightRequest, MemoryModule


def make_request(element: int = 0, module: int = 0) -> InFlightRequest:
    return InFlightRequest(element_index=element, address=element, module=module)


class TestQueueing:
    def test_accept_respects_capacity(self):
        module = MemoryModule(0, service_time=4, input_capacity=1, output_capacity=1)
        first = make_request(0)
        first.arrival_cycle = 1
        module.accept(first)
        assert not module.can_accept()
        with pytest.raises(SimulationError):
            module.accept(make_request(1))

    def test_service_waits_for_arrival(self):
        module = MemoryModule(0, 4, 2, 1)
        request = make_request()
        request.arrival_cycle = 5
        module.accept(request)
        module.try_start(4)
        assert module.in_service is None
        module.try_start(5)
        assert module.in_service is request
        assert request.start_cycle == 5
        assert request.finish_cycle == 8


class TestServiceLifecycle:
    def test_full_cycle(self):
        module = MemoryModule(0, 2, 1, 1)
        request = make_request()
        request.arrival_cycle = 1
        module.accept(request)
        module.try_start(1)
        module.try_finish(1)  # not done yet (finish at 2)
        assert module.in_service is request
        module.try_finish(2)
        assert module.in_service is None
        deliverable = module.peek_deliverable(3)
        assert deliverable is not None and deliverable[1] is request

    def test_result_not_deliverable_same_cycle(self):
        module = MemoryModule(0, 2, 1, 1)
        request = make_request()
        request.arrival_cycle = 1
        module.accept(request)
        module.try_start(1)
        module.try_finish(2)
        assert module.peek_deliverable(2) is None
        assert module.peek_deliverable(3) is not None

    def test_output_backpressure_blocks_start(self):
        module = MemoryModule(0, 1, 2, 1)
        first, second = make_request(0), make_request(1)
        first.arrival_cycle = second.arrival_cycle = 1
        module.accept(first)
        module.accept(second)
        module.try_start(1)
        module.try_finish(1)  # T=1: finishes immediately, output holds 1
        module.try_start(2)
        module.try_finish(2)  # second finishes; output full -> blocked
        assert module.blocked_result is second
        module.try_start(3)
        assert module.in_service is None  # blocked result stalls the module
        module.pop_deliverable()
        module.try_finish(3)  # blocked result drains into output
        assert module.blocked_result is None

    def test_pop_empty_raises(self):
        module = MemoryModule(0, 1, 1, 1)
        with pytest.raises(SimulationError):
            module.pop_deliverable()


class TestRequestRecord:
    def test_waited_property(self):
        request = make_request()
        request.arrival_cycle = 3
        request.start_cycle = 3
        assert not request.waited
        request.start_cycle = 5
        assert request.waited

    def test_incomplete_timing_raises(self):
        request = make_request()
        with pytest.raises(SimulationError):
            _ = request.waited
        with pytest.raises(SimulationError):
            _ = request.latency

    def test_latency(self):
        request = make_request()
        request.issue_cycle = 2
        request.delivery_cycle = 12
        assert request.latency == 11

    def test_idle_flag(self):
        module = MemoryModule(0, 2, 1, 1)
        assert module.idle
        request = make_request()
        request.arrival_cycle = 1
        module.accept(request)
        assert not module.idle
