"""Tests for the multi-stream memory system."""

from __future__ import annotations

import pytest

from repro.core.planner import AccessPlanner
from repro.core.vector import VectorAccess
from repro.errors import SimulationError
from repro.mappings.linear import MatchedXorMapping
from repro.memory.config import MemoryConfig
from repro.memory.multistream import MultiStreamMemorySystem
from repro.memory.system import MemorySystem


@pytest.fixture
def planner():
    return AccessPlanner(MatchedXorMapping(3, 4), 3)


@pytest.fixture
def config():
    return MemoryConfig.matched(t=3, s=4, input_capacity=2)


class TestSingleStreamEquivalence:
    def test_one_stream_matches_plain_system(self, planner, config):
        """With one stream the multi-stream machine is the plain machine."""
        plan = planner.plan(VectorAccess(16, 12, 128))
        multi = MultiStreamMemorySystem(config).run_streams(
            [plan.request_stream()]
        )
        plain = MemorySystem(config).run_plan(plan)
        assert multi.streams[0].latency == plain.latency
        assert multi.streams[0].conflict_free == plain.conflict_free


class TestInterleaving:
    def test_two_streams_share_the_bus(self, planner, config):
        """Two 128-element streams need at least 256 issue slots."""
        a = planner.plan(VectorAccess(0, 12, 128)).request_stream()
        b = planner.plan(VectorAccess(7, 3, 128)).request_stream()
        result = MultiStreamMemorySystem(config).run_streams([a, b])
        assert result.aggregate_elements == 256
        assert result.total_cycles >= 256
        assert result.bus_utilisation > 0.9

    def test_interleaving_breaks_individual_conflict_freedom(
        self, planner, config
    ):
        """Two individually conflict-free plans generally interfere —
        the reason the paper defers multi-vector access to future work."""
        a = planner.plan(VectorAccess(0, 12, 128)).request_stream()
        b = planner.plan(VectorAccess(1, 12, 128)).request_stream()
        result = MultiStreamMemorySystem(config).run_streams([a, b])
        total_waits = sum(stream.wait_count for stream in result.streams)
        total_stalls = sum(
            stream.issue_stall_cycles for stream in result.streams
        )
        assert total_waits + total_stalls > 0

    def test_round_robin_fairness(self, planner, config):
        a = planner.plan(VectorAccess(0, 1, 128)).request_stream()
        b = planner.plan(VectorAccess(3, 1, 128)).request_stream()
        result = MultiStreamMemorySystem(config).run_streams([a, b])
        latencies = [stream.latency for stream in result.streams]
        assert abs(latencies[0] - latencies[1]) <= 16


class TestPriorityPolicy:
    def test_stream_zero_favoured(self, planner, config):
        a = planner.plan(VectorAccess(0, 12, 128)).request_stream()
        b = planner.plan(VectorAccess(1, 12, 128)).request_stream()
        result = MultiStreamMemorySystem(config, policy="priority").run_streams(
            [a, b]
        )
        # The foreground stream issues back to back: its last delivery
        # comes well before the background stream's.
        assert (
            result.streams[0].last_delivery_cycle
            < result.streams[1].last_delivery_cycle
        )
        assert result.streams[0].latency <= 137 + 16

    def test_unknown_policy_rejected(self, config):
        with pytest.raises(SimulationError):
            MultiStreamMemorySystem(config, policy="bogus")


class TestValidation:
    def test_empty_streams_rejected(self, config):
        system = MultiStreamMemorySystem(config)
        with pytest.raises(SimulationError):
            system.run_streams([])
        with pytest.raises(SimulationError):
            system.run_streams([[], [(0, 0)]])


class TestThreeStreams:
    def test_aggregate_throughput_bounded_by_bus(self, planner, config):
        streams = [
            planner.plan(VectorAccess(base, 1, 64)).request_stream()
            for base in (0, 1, 2)
        ]
        result = MultiStreamMemorySystem(config).run_streams(streams)
        assert result.aggregate_elements == 192
        # One issue per cycle: the run cannot be shorter than 192 cycles.
        assert result.total_cycles >= 192
