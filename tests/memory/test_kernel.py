"""Equivalence and property tests for the unified memory kernel.

The kernel replaced three hand-written per-cycle loops (single-stream,
multi-stream, multi-port).  The strongest guarantee we can give is
cycle-for-cycle equivalence against a *reference implementation* — a
direct transcription of the legacy loops driving the unchanged
:class:`~repro.memory.module.MemoryModule` state machine — over the
seed workloads: every request's issue/arrival/start/finish/delivery
cycle, every stall counter and every busy counter must match exactly.

On top of that, property tests pin the degenerate geometry to the
paper: ``ports = 1, streams = 1`` with a conflict-free access is
exactly the ``T + L + 1`` latency formula.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.planner import AccessPlanner
from repro.core.vector import VectorAccess
from repro.errors import ConfigurationError, SimulationError
from repro.memory.arbiter import FifoArbiter
from repro.memory.config import MemoryConfig
from repro.memory.kernel import KernelStream, MemoryKernel
from repro.memory.module import InFlightRequest, MemoryModule
from repro.memory.multiport import MultiPortMemorySystem
from repro.memory.multistream import MultiStreamMemorySystem
from repro.memory.system import MemorySystem


# -- the reference implementation (transcribed legacy loops) -------------


def reference_run(config, streams, ports=1, policy="round_robin"):
    """The legacy per-cycle loop, generalised exactly as the three
    historical simulators composed it.

    ``ports = 1`` with one stream is the old ``MemorySystem`` loop,
    ``ports = 1`` with several streams the old ``MultiStreamMemorySystem``
    loop, and ``ports > 1`` the old ``MultiPortMemorySystem`` loop.
    Returns per-stream request records plus the counters the legacy
    result types exposed.
    """
    mapping = config.mapping
    pending = [
        [
            InFlightRequest(
                element_index=element,
                address=mapping.reduce(address),
                module=mapping.module_of(mapping.reduce(address)),
                is_store=position in stores,
            )
            for position, (element, address) in enumerate(stream)
        ]
        for stream, stores in streams
    ]
    modules = [
        MemoryModule(
            index,
            config.service_ratio,
            config.input_capacity,
            config.output_capacity,
        )
        for index in range(config.module_count)
    ]
    stream_count = len(pending)
    cursors = [0] * stream_count
    stalls = [0] * stream_count
    first_issue = [0] * stream_count
    last_delivery = [0] * stream_count
    owner_of: dict[int, int] = {}
    rotation = [0] * ports
    delivered = 0
    total = sum(len(stream) for stream in pending)
    bus_busy = 0
    bus_held = False
    cycle = 0
    guard = (total + 2) * (config.service_ratio + 2) + 64
    arbiters = [FifoArbiter() for _ in range(ports)]

    while delivered < total:
        cycle += 1
        assert cycle <= guard, "reference run exceeded the cycle guard"

        for port in range(ports):
            members = [
                index
                for index in range(stream_count)
                if index % ports == port
                and cursors[index] < len(pending[index])
            ]
            if policy == "round_robin":
                members.sort(
                    key=lambda i: (i - rotation[port]) % stream_count
                )
            for stream_index in members:
                request = pending[stream_index][cursors[stream_index]]
                target = modules[request.module]
                if target.can_accept():
                    request.issue_cycle = cycle
                    request.arrival_cycle = cycle + 1
                    target.accept(request)
                    owner_of[id(request)] = stream_index
                    if first_issue[stream_index] == 0:
                        first_issue[stream_index] = cycle
                    cursors[stream_index] += 1
                    rotation[port] = stream_index + 1
                    bus_busy += 1
                    break
                stalls[stream_index] += 1
                if policy == "priority":
                    break

        ready = [
            module
            for module in modules
            if module.peek_deliverable(cycle) is not None
        ]
        grants = 0
        for arbiter in arbiters:
            granted = arbiter.grant(modules, cycle)
            if granted is None:
                break
            request = modules[granted].pop_deliverable()
            request.delivery_cycle = cycle
            stream_index = owner_of.pop(id(request))
            last_delivery[stream_index] = max(
                last_delivery[stream_index], cycle
            )
            delivered += 1
            grants += 1
        if len(ready) > grants:
            bus_held = True

        for module in modules:
            module.try_start(cycle)
            module.tick_stats()
        for module in modules:
            module.try_finish(cycle)

    return {
        "requests": pending,
        "total_cycles": cycle,
        "stalls": stalls,
        "first_issue": first_issue,
        "last_delivery": last_delivery,
        "bus_busy": bus_busy,
        "bus_held": bus_held,
        "module_busy": [module.busy_cycles for module in modules],
    }


def timing_tuples(requests):
    return [
        (
            r.element_index,
            r.address,
            r.module,
            r.issue_cycle,
            r.arrival_cycle,
            r.start_cycle,
            r.delivery_cycle,
        )
        for r in requests
    ]


MATCHED = MemoryConfig.matched(t=3, s=4)
MATCHED_Q2 = MemoryConfig.matched(t=3, s=4, input_capacity=2)
MATCHED_DEEP = MemoryConfig.matched(t=3, s=4, input_capacity=2, output_capacity=2)
UNMATCHED = MemoryConfig.unmatched(t=3, s=4, y=9, input_capacity=2)
SLOW = MemoryConfig.matched(t=4, s=5)

#: The seed workloads: (config, mode, vectors) triples covering the
#: conflict-free scheme, ordered (conflicting) access and short vectors.
SEED_CASES = [
    (MATCHED, "auto", [VectorAccess(16, 12, 128)]),
    (MATCHED, "conflict_free", [VectorAccess(16, 12, 128)]),
    (MATCHED, "ordered", [VectorAccess(0, 1 << 6, 128)]),
    (MATCHED, "ordered", [VectorAccess(0, 8, 64)]),
    (MATCHED_Q2, "auto", [VectorAccess(0, 12, 128), VectorAccess(1, 12, 128)]),
    (MATCHED_Q2, "auto", [VectorAccess(0, 1, 64), VectorAccess(3, 1, 64), VectorAccess(7, 5, 48)]),
    (MATCHED_DEEP, "ordered", [VectorAccess(0, 16, 96), VectorAccess(2, 16, 96)]),
    (UNMATCHED, "auto", [VectorAccess(0, 16, 64), VectorAccess(1 << 9, 16, 64)]),
    (UNMATCHED, "ordered", [VectorAccess(0, 12, 64), VectorAccess(512, 12, 64), VectorAccess(1024, 3, 64)]),
    (SLOW, "ordered", [VectorAccess(5, 32, 64)]),
]


def plan_streams(config, mode, vectors):
    planner = AccessPlanner(config.mapping, config.t)
    return [
        tuple(planner.plan(vector, mode=mode).request_stream())
        for vector in vectors
    ]


class TestSingleStreamEquivalence:
    @pytest.mark.parametrize("case", SEED_CASES, ids=str)
    def test_matches_reference(self, case):
        config, mode, vectors = case
        for stream in plan_streams(config, mode, vectors):
            reference = reference_run(config, [(stream, frozenset())])
            result = MemorySystem(config).run_stream(stream)
            assert result.latency == reference["total_cycles"]
            assert result.issue_stall_cycles == reference["stalls"][0]
            assert result.conflict_free == (
                all(not r.waited for r in reference["requests"][0])
                and not reference["bus_held"]
                and reference["stalls"][0] == 0
            )
            assert tuple(result.module_busy_cycles) == tuple(
                reference["module_busy"]
            )
            assert timing_tuples(result.requests) == timing_tuples(
                reference["requests"][0]
            )

    def test_store_positions_travel(self):
        stream = plan_streams(MATCHED, "auto", [VectorAccess(16, 12, 32)])[0]
        result = MemorySystem(MATCHED).run_stream(stream, stores=range(16))
        assert sum(1 for r in result.requests if r.is_store) == 16


class TestMultiStreamEquivalence:
    @pytest.mark.parametrize("case", SEED_CASES, ids=str)
    @pytest.mark.parametrize("policy", ["round_robin", "priority"])
    def test_matches_reference(self, case, policy):
        config, mode, vectors = case
        streams = plan_streams(config, mode, vectors)
        reference = reference_run(
            config, [(s, frozenset()) for s in streams], policy=policy
        )
        result = MultiStreamMemorySystem(config, policy=policy).run_streams(
            streams
        )
        assert result.total_cycles == reference["total_cycles"]
        assert result.bus_busy_cycles == reference["bus_busy"]
        for index, stream_result in enumerate(result.streams):
            assert stream_result.issue_stall_cycles == reference["stalls"][index]
            assert stream_result.first_issue_cycle == reference["first_issue"][index]
            assert stream_result.last_delivery_cycle == reference["last_delivery"][index]
            assert stream_result.wait_count == sum(
                1 for r in reference["requests"][index] if r.waited
            )


class TestMultiPortEquivalence:
    @pytest.mark.parametrize("case", SEED_CASES, ids=str)
    @pytest.mark.parametrize("ports", [1, 2, 3])
    def test_matches_reference(self, case, ports):
        config, mode, vectors = case
        if ports > config.module_count:
            pytest.skip("ports exceed modules")
        streams = plan_streams(config, mode, vectors)
        reference = reference_run(
            config, [(s, frozenset()) for s in streams], ports=ports
        )
        result = MultiPortMemorySystem(config, ports).run_streams(streams)
        assert result.total_cycles == reference["total_cycles"]
        assert result.bus_busy_cycles == reference["bus_busy"]
        for index, stream_result in enumerate(result.streams):
            assert stream_result.issue_stall_cycles == reference["stalls"][index]
            assert stream_result.first_issue_cycle == reference["first_issue"][index]
            assert stream_result.last_delivery_cycle == reference["last_delivery"][index]


class TestDegenerateGeometry:
    """``ports = 1, streams = 1`` is exactly the paper's machine."""

    @settings(max_examples=60, deadline=None)
    @given(
        t=st.integers(min_value=0, max_value=4),
        stride=st.integers(min_value=1, max_value=64),
        length=st.integers(min_value=4, max_value=128),
        base=st.integers(min_value=0, max_value=1024),
    )
    def test_conflict_free_hits_minimum_latency(self, t, stride, length, base):
        config = MemoryConfig.matched(t=t, s=5)
        planner = AccessPlanner(config.mapping, t)
        plan = planner.plan(VectorAccess(base, stride, length), mode="auto")
        run = MemoryKernel(config).run([plan.request_stream()])
        stream = run.streams[0]
        conflict_free = stream.conflict_free and not run.bus_held_result
        if conflict_free:
            assert run.total_cycles == config.service_ratio + length + 1
        else:
            assert run.total_cycles > config.service_ratio + length + 1

    @settings(max_examples=30, deadline=None)
    @given(
        stride=st.integers(min_value=1, max_value=48),
        length=st.integers(min_value=4, max_value=96),
    )
    def test_kernel_view_equals_memory_system(self, stride, length):
        plan = AccessPlanner(MATCHED.mapping, 3).plan(
            VectorAccess(0, stride, length), mode="auto"
        )
        via_view = MemorySystem(MATCHED).run_plan(plan)
        run = MemoryKernel(MATCHED).run([plan.request_stream()])
        assert via_view.latency == run.total_cycles
        assert via_view.issue_stall_cycles == run.streams[0].issue_stall_cycles


class TestKernelValidation:
    def test_ports_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="'ports'"):
            MemoryKernel(MATCHED, ports=0)

    def test_ports_bounded_by_modules(self):
        with pytest.raises(ConfigurationError, match="'ports'"):
            MemoryKernel(MATCHED, ports=9)

    def test_config_ports_validated(self):
        with pytest.raises(ConfigurationError, match="'ports'"):
            MemoryConfig.matched(t=3, s=4, ports=0)
        with pytest.raises(ConfigurationError, match="'ports'"):
            MemoryConfig.matched(t=3, s=4, ports=16)

    def test_colliding_stream_names(self):
        kernel = MemoryKernel(MATCHED)
        streams = [
            KernelStream.of("same", [(0, 0)]),
            KernelStream.of("same", [(0, 8)]),
        ]
        with pytest.raises(ConfigurationError, match="colliding stream names"):
            kernel.run(streams)

    def test_stream_port_out_of_range(self):
        kernel = MemoryKernel(MATCHED, ports=2)
        with pytest.raises(ConfigurationError, match="'port'"):
            kernel.run([KernelStream.of("a", [(0, 0)], port=5)])

    def test_unknown_policy(self):
        with pytest.raises(SimulationError):
            MemoryKernel(MATCHED, policy="bogus")

    def test_empty_streams_rejected(self):
        kernel = MemoryKernel(MATCHED)
        with pytest.raises(SimulationError):
            kernel.run([])
        with pytest.raises(SimulationError):
            kernel.run([[]])


class TestKernelRunRecord:
    def test_port_occupancy_reported(self):
        streams = plan_streams(
            UNMATCHED, "auto", [VectorAccess(0, 16, 32), VectorAccess(1 << 9, 16, 32)]
        )
        run = MemoryKernel(UNMATCHED, ports=2).run(streams)
        assert run.ports == 2
        assert [stream.port for stream in run.streams] == [0, 1]
        assert sum(run.port_issue_cycles) == run.bus_busy_cycles == 64
        assert run.aggregate_elements == 64

    def test_busy_attribution_sums_to_total(self):
        streams = plan_streams(
            MATCHED_Q2, "auto", [VectorAccess(0, 12, 64), VectorAccess(1, 12, 64)]
        )
        run = MemoryKernel(MATCHED_Q2).run(streams)
        per_stream = [
            tuple(
                MATCHED_Q2.service_ratio * count
                for count in stream.module_request_counts
            )
            for stream in run.streams
        ]
        combined = tuple(sum(parts) for parts in zip(*per_stream))
        assert combined == run.module_busy_cycles


class TestPerStreamHoldAttribution:
    """A held result only taints the stream whose delivery slipped."""

    @staticmethod
    def one_request_stream(name, index, module, delivery):
        from repro.memory.kernel import StreamRun

        return StreamRun(
            name=name,
            index=index,
            port=0,
            first_issue_cycle=1,
            last_delivery_cycle=delivery,
            issue_stall_cycles=0,
            requests=(
                InFlightRequest(
                    element_index=0,
                    address=module,
                    module=module,
                    issue_cycle=1,
                    arrival_cycle=2,
                    start_cycle=2,
                    finish_cycle=9,
                    delivery_cycle=delivery,
                ),
            ),
            module_request_counts=tuple(
                1 if m == module else 0 for m in range(8)
            ),
        )

    def test_clean_stream_stays_conflict_free(self):
        from repro.memory.kernel import KernelRun
        from repro.memory.system import access_result_from_run

        clean = self.one_request_stream("clean", 0, 0, delivery=10)
        held = self.one_request_stream("held", 1, 1, delivery=11)
        run = KernelRun(
            streams=(clean, held),
            total_cycles=11,
            ports=1,
            bus_busy_cycles=2,
            bus_held_result=True,
            module_busy_cycles=(8, 8, 0, 0, 0, 0, 0, 0),
        )
        assert not clean.result_held
        assert held.result_held
        assert access_result_from_run(run, 0, 8).conflict_free
        assert not access_result_from_run(run, 1, 8).conflict_free

    def test_single_stream_keeps_global_flag(self):
        from repro.memory.kernel import KernelRun
        from repro.memory.system import access_result_from_run

        clean = self.one_request_stream("only", 0, 0, delivery=10)
        run = KernelRun(
            streams=(clean,),
            total_cycles=10,
            ports=1,
            bus_busy_cycles=1,
            bus_held_result=True,
            module_busy_cycles=(8, 0, 0, 0, 0, 0, 0, 0),
        )
        assert not access_result_from_run(run, 0, 8).conflict_free
