"""Tests for the structured event log."""

from __future__ import annotations

import pytest

from repro.core.planner import AccessPlanner
from repro.core.vector import VectorAccess
from repro.memory.config import MemoryConfig
from repro.memory.events import Event, EventKind, EventLog
from repro.memory.system import MemorySystem


@pytest.fixture
def cf_log(matched_planner, matched_system):
    plan = matched_planner.plan(VectorAccess(16, 12, 64))
    return EventLog.from_result(matched_system.run_plan(plan))


@pytest.fixture
def conflicting_log():
    config = MemoryConfig.matched(t=3, s=4, input_capacity=4)
    planner = AccessPlanner(config.mapping, 3)
    plan = planner.plan(VectorAccess(0, 128, 32), mode="ordered")
    return EventLog.from_result(MemorySystem(config).run_plan(plan))


class TestConstruction:
    def test_five_events_per_request(self, cf_log):
        assert len(cf_log) == 5 * 64

    def test_events_sorted(self, cf_log):
        cycles = [event.cycle for event in cf_log.events]
        assert cycles == sorted(cycles)


class TestLifecycleShape:
    def test_element_lifecycle_order(self, cf_log):
        for element in (0, 17, 63):
            events = cf_log.for_element(element)
            kinds = [event.kind for event in events]
            assert kinds == [
                EventKind.ISSUE,
                EventKind.ARRIVE,
                EventKind.START,
                EventKind.FINISH,
                EventKind.DELIVER,
            ]
            cycles = [event.cycle for event in events]
            # issue+1 = arrive = start; finish = start+T-1; deliver = +1.
            assert cycles[1] == cycles[0] + 1
            assert cycles[2] == cycles[1]  # conflict-free: no waiting
            assert cycles[3] == cycles[2] + 8 - 1
            assert cycles[4] == cycles[3] + 1

    def test_one_issue_per_cycle(self, cf_log):
        issues = cf_log.of_kind(EventKind.ISSUE)
        assert [event.cycle for event in issues] == list(range(1, 65))

    def test_delivery_span(self, cf_log):
        assert cf_log.delivery_span() == (10, 73)


class TestQueueQueries:
    def test_no_queueing_when_conflict_free(self, cf_log):
        for module in range(8):
            assert cf_log.peak_queue_depth(module) == 0

    def test_queueing_when_serialised(self, conflicting_log):
        # All 32 requests hit one module through q=4 buffers.
        hot_module = conflicting_log.events[0].module
        assert conflicting_log.peak_queue_depth(hot_module) >= 2

    def test_queue_depth_at_specific_cycle(self, conflicting_log):
        hot_module = conflicting_log.events[0].module
        depths = [
            conflicting_log.queue_depth_at(hot_module, cycle)
            for cycle in range(1, 40)
        ]
        assert max(depths) == conflicting_log.peak_queue_depth(hot_module)


class TestQueriesAndExport:
    def test_at_cycle(self, cf_log):
        # Cycle 10: first delivery plus later requests' other stages.
        kinds = {event.kind for event in cf_log.at_cycle(10)}
        assert EventKind.DELIVER in kinds

    def test_for_module_filters(self, cf_log):
        for module in range(8):
            assert all(
                event.module == module for event in cf_log.for_module(module)
            )

    def test_csv_export(self, cf_log):
        csv = cf_log.to_csv()
        lines = csv.strip().splitlines()
        assert lines[0] == "cycle,kind,module,element"
        assert len(lines) == 1 + len(cf_log)
        assert lines[1].count(",") == 3

    def test_event_ordering_dataclass(self):
        early = Event(1, 0, 0, EventKind.ISSUE)
        late = Event(2, 0, 0, EventKind.ARRIVE)
        assert early < late
