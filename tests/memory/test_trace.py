"""Tests for the ASCII timeline renderer."""

from __future__ import annotations

from repro.core.vector import VectorAccess
from repro.memory.trace import describe_result, render_timeline


class TestRenderTimeline:
    def test_dimensions(self, matched_planner, matched_system):
        plan = matched_planner.plan(VectorAccess(16, 12, 32))
        result = matched_system.run_plan(plan)
        chart = render_timeline(result, module_count=8)
        lines = chart.splitlines()
        assert len(lines) == 9  # header + 8 modules
        assert lines[1].startswith("mod   0")

    def test_clipping(self, matched_planner, matched_system):
        plan = matched_planner.plan(VectorAccess(16, 12, 128))
        result = matched_system.run_plan(plan)
        chart = render_timeline(result, module_count=8, max_cycles=40)
        assert "clipped" in chart

    def test_busy_cells_marked(self, matched_planner, matched_system):
        plan = matched_planner.plan(VectorAccess(0, 1, 16))
        result = matched_system.run_plan(plan)
        chart = render_timeline(result, module_count=8)
        # Every module row must show some service activity.
        for line in chart.splitlines()[1:]:
            assert any(ch.isdigit() for ch in line[8:])


class TestDescribeResult:
    def test_conflict_free_description(self, matched_planner, matched_system):
        plan = matched_planner.plan(VectorAccess(16, 12, 128))
        result = matched_system.run_plan(plan)
        text = describe_result(result, 8)
        assert "conflict-free" in text
        assert "137" in text

    def test_conflicting_description(self, matched_planner, matched_system):
        plan = matched_planner.plan(VectorAccess(0, 128, 32), mode="ordered")
        result = matched_system.run_plan(plan)
        text = describe_result(result, 8)
        assert "queued" in text
