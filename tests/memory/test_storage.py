"""Tests for the backing store (and, implicitly, mapping bijectivity)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.mappings.linear import MatchedXorMapping
from repro.mappings.section import SectionXorMapping
from repro.mappings.skewed import SkewedMapping
from repro.memory.storage import MemoryStore


class TestReadWrite:
    def test_roundtrip(self):
        store = MemoryStore(MatchedXorMapping(3, 4))
        store.write(1234, 9.5)
        assert store.read(1234) == 9.5

    def test_uninitialised_read_raises(self):
        store = MemoryStore(MatchedXorMapping(3, 4))
        with pytest.raises(SimulationError):
            store.read(42)

    def test_overwrite(self):
        store = MemoryStore(MatchedXorMapping(3, 4))
        store.write(7, 1.0)
        store.write(7, 2.0)
        assert store.read(7) == 2.0

    def test_wraps_address_space(self):
        mapping = MatchedXorMapping(3, 4, address_bits=12)
        store = MemoryStore(mapping)
        store.write(5, 1.5)
        assert store.read(5 + 4096) == 1.5


class TestVectorHelpers:
    def test_vector_roundtrip(self):
        store = MemoryStore(MatchedXorMapping(3, 4))
        values = [float(i) * 1.5 for i in range(64)]
        store.write_vector(100, 12, values)
        assert store.read_vector(100, 12, 64) == values

    def test_negative_stride(self):
        store = MemoryStore(MatchedXorMapping(3, 4))
        store.write_vector(1000, -3, [1.0, 2.0, 3.0])
        assert store.read(994) == 3.0


class TestBijectivityViaStorage:
    """Two addresses colliding on a (module, displacement) cell would
    corrupt data — exercised over dense ranges for every mapping kind."""

    @pytest.mark.parametrize(
        "mapping",
        [
            MatchedXorMapping(3, 4, address_bits=14),
            SectionXorMapping(2, 3, 7, address_bits=14),
            SkewedMapping(3, 4, address_bits=14),
        ],
        ids=["matched-xor", "section-xor", "skewed"],
    )
    def test_dense_range_no_collisions(self, mapping):
        store = MemoryStore(mapping)
        for address in range(2048):
            store.write(address, float(address))
        for address in range(2048):
            assert store.read(address) == float(address)

    @settings(max_examples=30)
    @given(st.lists(st.integers(min_value=0, max_value=2**14 - 1), max_size=64))
    def test_random_addresses(self, addresses):
        store = MemoryStore(SectionXorMapping(2, 3, 7, address_bits=14))
        reference = {}
        for i, address in enumerate(addresses):
            store.write(address, float(i))
            reference[address] = float(i)
        for address, value in reference.items():
            assert store.read(address) == value


class TestOccupancy:
    def test_balanced_occupancy_for_unit_stride(self):
        store = MemoryStore(MatchedXorMapping(3, 4))
        store.write_vector(0, 1, [0.0] * 128)
        assert store.occupancy() == [16] * 8
