"""Tests for derived simulation metrics."""

from __future__ import annotations

import pytest

from repro.core.planner import AccessPlanner
from repro.core.vector import VectorAccess
from repro.memory.config import MemoryConfig
from repro.memory.metrics import (
    access_efficiency,
    cycles_per_element,
    module_load_balance,
    streaming_efficiency,
    summarise_population,
)
from repro.memory.system import MemorySystem


@pytest.fixture
def cf_result(matched_planner, matched_system):
    plan = matched_planner.plan(VectorAccess(16, 12, 128))
    return matched_system.run_plan(plan)


@pytest.fixture
def conflicting_result():
    config = MemoryConfig.matched(t=3, s=4, input_capacity=4)
    planner = AccessPlanner(config.mapping, 3)
    plan = planner.plan(VectorAccess(0, 128, 64), mode="ordered")
    return MemorySystem(config).run_plan(plan)


class TestSingleAccessMetrics:
    def test_conflict_free_is_unit_efficiency(self, cf_result):
        assert access_efficiency(cf_result, 8) == 1.0
        assert streaming_efficiency(cf_result, 8) == 1.0
        assert cycles_per_element(cf_result, 8) == 1.0

    def test_serialised_access_costs_t(self, conflicting_result):
        assert cycles_per_element(conflicting_result, 8) == pytest.approx(
            8.0, rel=0.1
        )
        assert streaming_efficiency(conflicting_result, 8) == pytest.approx(
            1 / 8, rel=0.1
        )


class TestPopulationSummary:
    def test_aggregation(self, cf_result, conflicting_result):
        summary = summarise_population([cf_result, conflicting_result], 8)
        assert summary.accesses == 2
        assert summary.total_elements == 128 + 64
        assert summary.conflict_free_accesses == 1
        assert summary.conflict_free_fraction == 0.5
        assert 0 < summary.efficiency < 1

    def test_empty_population(self):
        summary = summarise_population([], 8)
        assert summary.efficiency == 0.0
        assert summary.conflict_free_fraction == 0.0


class TestLoadBalance:
    def test_even_for_conflict_free(self, cf_result):
        assert module_load_balance(cf_result) == 1.0

    def test_skewed_for_clustered(self, conflicting_result):
        assert module_load_balance(conflicting_result) == pytest.approx(8.0)
