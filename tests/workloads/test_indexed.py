"""Tests for index-vector generators and their scheduling behaviour."""

from __future__ import annotations

import pytest

from repro.core.gather import IndexedAccess, plan_indexed
from repro.errors import VectorSpecError
from repro.mappings.linear import MatchedXorMapping
from repro.workloads.indexed import (
    bit_reversal_indices,
    block_shuffle_indices,
    csr_row_indices,
    histogram_indices,
)

MAPPING = MatchedXorMapping(3, 4)


class TestBitReversal:
    def test_small_case(self):
        assert bit_reversal_indices(3) == [0, 4, 2, 6, 1, 5, 3, 7]

    def test_is_involution(self):
        indices = bit_reversal_indices(6)
        assert [indices[i] for i in indices] == list(range(64))

    def test_is_permutation(self):
        assert sorted(bit_reversal_indices(7)) == list(range(128))

    def test_gather_schedules_conflict_free(self):
        """Bit reversal of a full range is balanced: the scheduler finds
        a conflict-free order for an access no stride can express."""
        access = IndexedAccess(0, bit_reversal_indices(7))
        plan = plan_indexed(MAPPING, 3, access, mode="scheduled")
        assert plan.conflict_free
        ordered = plan_indexed(MAPPING, 3, access, mode="ordered")
        assert not ordered.conflict_free

    def test_bits_validation(self):
        with pytest.raises(VectorSpecError):
            bit_reversal_indices(-1)


class TestCsrRow:
    def test_sorted_distinct(self):
        indices = csr_row_indices(50, 1000, seed=2)
        assert indices == sorted(indices)
        assert len(set(indices)) == 50

    def test_validation(self):
        with pytest.raises(VectorSpecError):
            csr_row_indices(10, 5)
        with pytest.raises(VectorSpecError):
            csr_row_indices(0, 5)

    def test_deterministic(self):
        assert csr_row_indices(20, 100, seed=7) == csr_row_indices(
            20, 100, seed=7
        )


class TestHistogram:
    def test_skewed_toward_low_buckets(self):
        indices = histogram_indices(5000, 64, skew=1.5, seed=3)
        low = sum(1 for i in indices if i < 8)
        high = sum(1 for i in indices if i >= 56)
        assert low > 4 * high

    def test_validation(self):
        with pytest.raises(VectorSpecError):
            histogram_indices(0, 8)
        with pytest.raises(VectorSpecError):
            histogram_indices(10, 8, skew=0)

    def test_within_bucket_range(self):
        indices = histogram_indices(100, 16, seed=1)
        assert all(0 <= i < 16 for i in indices)


class TestBlockShuffle:
    def test_partition(self):
        indices = block_shuffle_indices(8, 16, seed=4)
        assert sorted(indices) == list(range(128))

    def test_blocks_stay_dense(self):
        indices = block_shuffle_indices(8, 4, seed=5)
        for start in range(0, 32, 8):
            chunk = indices[start : start + 8]
            assert chunk == list(range(chunk[0], chunk[0] + 8))

    def test_validation(self):
        with pytest.raises(VectorSpecError):
            block_shuffle_indices(0, 4)
