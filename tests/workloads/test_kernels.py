"""Tests for kernel access-pattern generators."""

from __future__ import annotations

import pytest

from repro.core.families import family_of
from repro.errors import VectorSpecError
from repro.workloads.kernels import (
    fft_butterfly_accesses,
    matrix_antidiagonal_access,
    matrix_column_accesses,
    matrix_diagonal_access,
    matrix_row_accesses,
    stencil_accesses,
    transpose_block_accesses,
)


class TestMatrixPatterns:
    def test_rows(self):
        accesses = matrix_row_accesses(4, 10, base=100)
        assert len(accesses) == 4
        assert accesses[1].base == 110
        assert all(a.stride == 1 and a.length == 10 for a in accesses)

    def test_columns(self):
        accesses = matrix_column_accesses(8, 16)
        assert len(accesses) == 16
        assert all(a.stride == 16 and a.length == 8 for a in accesses)
        assert accesses[3].base == 3

    def test_column_family_is_log_cols(self):
        accesses = matrix_column_accesses(4, 64)
        assert family_of(accesses[0].stride) == 6

    def test_diagonal(self):
        access = matrix_diagonal_access(64)
        assert access.stride == 65
        assert access.length == 64
        assert family_of(access.stride) == 0  # 65 is odd: easy stride

    def test_antidiagonal(self):
        access = matrix_antidiagonal_access(64)
        assert access.stride == 63
        assert access.address_of(0) == 63
        with pytest.raises(VectorSpecError):
            matrix_antidiagonal_access(1)

    def test_validation(self):
        with pytest.raises(VectorSpecError):
            matrix_row_accesses(0, 4)


class TestFftPatterns:
    def test_stage_strides(self):
        for stage in range(6):
            accesses = fft_butterfly_accesses(128, stage)
            assert all(a.stride == 1 << (stage + 1) for a in accesses)

    def test_element_coverage(self):
        """Each stage touches every element exactly once."""
        n = 64
        for stage in range(5):
            touched = []
            for access in fft_butterfly_accesses(n, stage):
                touched.extend(access.addresses())
            assert sorted(touched) == list(range(n))

    def test_stage_bounds(self):
        with pytest.raises(VectorSpecError):
            fft_butterfly_accesses(64, 6)
        with pytest.raises(VectorSpecError):
            fft_butterfly_accesses(64, -1)


class TestTransposeAndStencil:
    def test_transpose_tiles(self):
        accesses = transpose_block_accesses(8, 8, 4)
        # 4 tiles x 4 columns each.
        assert len(accesses) == 16
        assert all(a.stride == 8 and a.length == 4 for a in accesses)

    def test_transpose_ragged_edges(self):
        accesses = transpose_block_accesses(6, 6, 4)
        lengths = sorted({a.length for a in accesses})
        assert lengths == [2, 4]

    def test_stencil_shape(self):
        accesses = stencil_accesses(5, 10)
        # 3 interior rows x 5 operand vectors.
        assert len(accesses) == 15
        assert all(a.length == 8 for a in accesses)

    def test_stencil_minimum_size(self):
        with pytest.raises(VectorSpecError):
            stencil_accesses(2, 10)
