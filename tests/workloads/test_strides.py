"""Tests for stride population generators."""

from __future__ import annotations

import pytest

from repro.errors import VectorSpecError
from repro.workloads.strides import (
    family_mix,
    realistic_stride_population,
    realistic_strides,
    uniform_strides,
)


class TestUniformStrides:
    def test_count_and_range(self):
        strides = uniform_strides(500, max_stride_bits=10, seed=3)
        assert len(strides) == 500
        assert all(1 <= s <= 1024 for s in strides)

    def test_deterministic(self):
        assert uniform_strides(50, seed=9) == uniform_strides(50, seed=9)

    def test_family_mix_geometric(self):
        strides = uniform_strides(20000, seed=11)
        mix = family_mix(strides)
        assert abs(mix[0] - 0.5) < 0.02
        assert abs(mix[1] - 0.25) < 0.02

    def test_bad_count(self):
        with pytest.raises(VectorSpecError):
            uniform_strides(0)


class TestRealisticPopulation:
    def test_weights_sum_to_one(self):
        population = realistic_stride_population()
        assert sum(item.weight for item in population) == pytest.approx(1.0)

    def test_families_annotated(self):
        population = realistic_stride_population(matrix_dimension=512)
        by_source = {item.source: item for item in population}
        assert by_source["unit (rows, saxpy)"].family == 0
        # 512 = 2**9: the worst case for conventional interleaving.
        assert by_source["matrix column (ld=512)"].family == 9
        assert by_source["main diagonal"].family == 0  # 513 is odd

    def test_sampling(self):
        strides = realistic_strides(1000, matrix_dimension=500, seed=5)
        assert len(strides) == 1000
        population = {item.stride for item in realistic_stride_population(500)}
        assert set(strides) <= population

    def test_bad_count(self):
        with pytest.raises(VectorSpecError):
            realistic_strides(0)
