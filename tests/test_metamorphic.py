"""Metamorphic properties: invariances the XOR algebra must respect.

Each test states a transformation of the input that must leave some
observable unchanged — translation of the base address by high powers of
two, negation of the stride, re-basing by whole periods, equivalence of
the dedicated mappings with their GF(2) matrix forms.  These catch the
kind of bit-slicing bugs that example-based tests miss.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distributions import canonical_temporal_distribution
from repro.core.planner import AccessPlanner
from repro.core.vector import VectorAccess
from repro.mappings.linear import MatchedXorMapping
from repro.mappings.matrix import XorMatrixMapping
from repro.mappings.section import SectionXorMapping

odd_sigmas = st.integers(min_value=-15, max_value=15).filter(
    lambda v: v % 2 != 0
)


class TestTranslationInvariance:
    @settings(max_examples=60)
    @given(
        base=st.integers(min_value=0, max_value=2**20),
        shift=st.integers(min_value=1, max_value=64),
        x=st.integers(min_value=0, max_value=4),
        sigma=odd_sigmas,
    )
    def test_matched_modules_invariant_above_s_plus_t(
        self, base, shift, x, sigma
    ):
        """Adding multiples of 2**(s+t) to the base cannot change any
        module number: the mapping only reads bits below s+t."""
        mapping = MatchedXorMapping(3, 4)
        stride = sigma * (1 << x)
        original = mapping.module_sequence(base, stride, 64)
        translated = mapping.module_sequence(
            base + shift * (1 << 7), stride, 64
        )
        assert original == translated

    @settings(max_examples=60)
    @given(
        base=st.integers(min_value=0, max_value=2**20),
        shift=st.integers(min_value=1, max_value=64),
    )
    def test_section_modules_invariant_above_y_plus_t(self, base, shift):
        mapping = SectionXorMapping(3, 4, 9)
        original = mapping.module_sequence(base, 12, 64)
        translated = mapping.module_sequence(
            base + shift * (1 << 12), 12, 64
        )
        assert original == translated


class TestPeriodTranslation:
    @settings(max_examples=60)
    @given(
        base=st.integers(min_value=0, max_value=2**18),
        x=st.integers(min_value=0, max_value=4),
        sigma=odd_sigmas,
        periods=st.integers(min_value=1, max_value=4),
    )
    def test_advancing_whole_periods_preserves_ctp(
        self, base, x, sigma, periods
    ):
        """Starting the vector k periods later replays the same CTP."""
        mapping = MatchedXorMapping(3, 4)
        stride = sigma * (1 << x)
        span = mapping.period(x)
        a = VectorAccess(base, stride, span)
        b = VectorAccess(base + periods * span * stride, stride, span)
        assert canonical_temporal_distribution(
            mapping, a
        ) == canonical_temporal_distribution(mapping, b)


class TestConflictFreedomInvariances:
    @settings(max_examples=40, deadline=None)
    @given(
        base=st.integers(min_value=0, max_value=2**22),
        x=st.integers(min_value=0, max_value=4),
        sigma=odd_sigmas,
    )
    def test_negating_the_stride_preserves_the_verdict(self, base, x, sigma):
        planner = AccessPlanner(MatchedXorMapping(3, 4), 3)
        forward = planner.plan(VectorAccess(base, sigma * (1 << x), 128))
        backward = planner.plan(VectorAccess(base, -sigma * (1 << x), 128))
        assert forward.conflict_free == backward.conflict_free

    @settings(max_examples=40, deadline=None)
    @given(
        base=st.integers(min_value=0, max_value=2**22),
        x=st.integers(min_value=0, max_value=4),
        sigma=odd_sigmas,
    )
    def test_reversal_symmetry(self, base, x, sigma):
        """Reading the same elements from the other end (base' = last
        element, stride' = -stride) is the same multiset of addresses:
        the conflict-free verdict must agree."""
        planner = AccessPlanner(MatchedXorMapping(3, 4), 3)
        stride = sigma * (1 << x)
        forward = VectorAccess(base, stride, 128)
        backward = VectorAccess(base + 127 * stride, -stride, 128)
        assert sorted(map(forward.address_of, range(128))) == sorted(
            map(backward.address_of, range(128))
        )
        assert (
            planner.plan(forward).conflict_free
            == planner.plan(backward).conflict_free
        )


class TestMatrixEquivalence:
    @settings(max_examples=60)
    @given(address=st.integers(min_value=0, max_value=2**24 - 1))
    def test_matched_matrix_form(self, address):
        direct = MatchedXorMapping(3, 5)
        matrix = XorMatrixMapping.from_matched(3, 5)
        assert direct.module_of(address) == matrix.module_of(address)

    @settings(max_examples=60)
    @given(address=st.integers(min_value=0, max_value=2**24 - 1))
    def test_section_matrix_form(self, address):
        direct = SectionXorMapping(2, 3, 7)
        matrix = XorMatrixMapping.from_section(2, 3, 7)
        assert direct.module_of(address) == matrix.module_of(address)


class TestAddressSpaceWraparound:
    """Vectors that wrap modulo 2**address_bits keep all guarantees:
    the algebra is linear over Z/2^n."""

    def test_wrapping_vector_still_conflict_free(self):
        mapping = MatchedXorMapping(3, 4, address_bits=16)
        planner = AccessPlanner(mapping, 3)
        # Base near the top of the 16-bit space: the access wraps.
        vector = VectorAccess((1 << 16) - 100, 12, 128)
        plan = planner.plan(vector)
        assert plan.conflict_free

    def test_negative_base_reduces_correctly(self):
        mapping = MatchedXorMapping(3, 4, address_bits=16)
        planner = AccessPlanner(mapping, 3)
        plan = planner.plan(VectorAccess(-500, 12, 128))
        assert plan.conflict_free

    @settings(max_examples=40, deadline=None)
    @given(
        offset=st.integers(min_value=0, max_value=400),
        x=st.integers(min_value=0, max_value=4),
        sigma=st.integers(min_value=1, max_value=15).filter(
            lambda v: v % 2 != 0
        ),
    )
    def test_verdict_matches_translated_copy(self, offset, x, sigma):
        """A wrapping vector behaves like its translate by 2**n."""
        mapping = MatchedXorMapping(3, 4, address_bits=16)
        planner = AccessPlanner(mapping, 3)
        stride = sigma * (1 << x)
        near_top = VectorAccess((1 << 16) - offset, stride, 128)
        translated = VectorAccess(-offset, stride, 128)
        assert (
            planner.plan(near_top).modules == planner.plan(translated).modules
        )
