"""Public API surface checks.

Guards the package contract a downstream user relies on: everything
advertised in ``__all__`` is importable, carries a docstring, and the
top-level quickstart from the package docstring actually works.
"""

from __future__ import annotations

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.mappings",
    "repro.memory",
    "repro.hardware",
    "repro.processor",
    "repro.analysis",
    "repro.workloads",
    "repro.report",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_entries_resolve(package_name):
    package = importlib.import_module(package_name)
    for name in getattr(package, "__all__", []):
        if name.startswith("__"):
            continue
        assert hasattr(package, name), f"{package_name}.{name} missing"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_public_items_documented(package_name):
    package = importlib.import_module(package_name)
    undocumented = []
    for name in getattr(package, "__all__", []):
        if name.startswith("__"):
            continue
        item = getattr(package, name)
        if inspect.isclass(item) or inspect.isfunction(item):
            if not inspect.getdoc(item):
                undocumented.append(name)
    assert not undocumented, f"{package_name}: no docstring on {undocumented}"


def test_package_version():
    import repro

    assert repro.__version__ == "1.8.0"


def test_module_docstrings():
    import pathlib

    import repro

    root = pathlib.Path(repro.__file__).parent
    missing = []
    for path in root.rglob("*.py"):
        text = path.read_text()
        stripped = text.lstrip()
        if not (stripped.startswith('"""') or stripped.startswith("'''")):
            missing.append(str(path.relative_to(root)))
    assert not missing, f"modules without docstrings: {missing}"


def test_quickstart_from_package_docstring():
    """The exact snippet advertised in ``repro.__doc__`` must run."""
    from repro import AccessPlanner, MatchedDesign, VectorAccess
    from repro.memory import MemoryConfig, MemorySystem

    design = MatchedDesign.recommended(lambda_exponent=7, t=3)
    planner = AccessPlanner(design.mapping(), design.t)
    plan = planner.plan(VectorAccess(base=16, stride=12, length=128))
    result = MemorySystem(MemoryConfig.matched(3, design.s)).run_plan(plan)
    assert result.conflict_free and result.latency == 8 + 128 + 1


def test_error_hierarchy_rooted():
    from repro import errors

    for name in errors.__dict__:
        item = getattr(errors, name)
        if inspect.isclass(item) and issubclass(item, Exception):
            if item is not errors.ReproError:
                assert issubclass(item, errors.ReproError), name
