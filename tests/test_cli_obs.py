"""CLI tests for the observability surface.

Covers `scenario run --trace`, `lab status --metrics`,
`lab history` (trend, ingest, exit codes, `--flag-regressions`) and
`lab index --prune-stale`.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.scenarios import ComponentSpec, MemorySpec, ScenarioGrid, ScenarioSpec


def demo_spec(name: str = "obs-cli-demo") -> ScenarioSpec:
    return ScenarioSpec(
        mapping=ComponentSpec.of("matched-xor", t=2, s=3),
        memory=MemorySpec(t=2),
        workload=ComponentSpec.of("strided", base=0, stride=4, length=32),
        name=name,
    )


@pytest.fixture
def spec_file(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(demo_spec().to_json())
    return path


@pytest.fixture
def grid_file(tmp_path):
    grid = ScenarioGrid.of(demo_spec(), memory__q=(1,))
    path = tmp_path / "sweep-grid.json"
    path.write_text(grid.to_json())
    return path


def sweep(root, grid_path) -> None:
    assert main(["lab", "sweep", str(grid_path), "--root", str(root),
                 "--backend", "serial"]) == 0


class TestScenarioTrace:
    def test_trace_writes_chrome_json(self, spec_file, tmp_path, capsys):
        out = tmp_path / "trace.json"
        code = main(["scenario", "run", str(spec_file), "--trace", str(out)])
        assert code == 0
        output = capsys.readouterr().out
        assert f"trace: {out}" in output
        trace = json.loads(out.read_text())
        assert trace["traceEvents"]
        assert {event["ph"] for event in trace["traceEvents"]} >= {"M", "X"}

    def test_trace_with_json_keeps_stdout_parseable(
        self, spec_file, tmp_path, capsys
    ):
        out = tmp_path / "trace.json"
        code = main(
            ["scenario", "run", str(spec_file), "--json", "--trace", str(out)]
        )
        assert code == 0
        captured = capsys.readouterr()
        json.loads(captured.out)  # stdout is pure JSON
        assert "trace:" in captured.err

    def test_grid_traces_get_numbered_suffixes(self, tmp_path, capsys):
        grid = ScenarioGrid.of(demo_spec("grid"), memory__q=(1, 2))
        path = tmp_path / "grid.json"
        path.write_text(grid.to_json())
        out = tmp_path / "grid-trace.json"
        assert main(["scenario", "run", str(path), "--trace", str(out)]) == 0
        for suffix in ("grid-trace-1.json", "grid-trace-2.json"):
            assert json.loads((tmp_path / suffix).read_text())["traceEvents"]
        assert not out.exists()

    def test_trace_conflicts_with_lab(self, spec_file, tmp_path, capsys):
        code = main(
            [
                "scenario", "run", str(spec_file),
                "--trace", str(tmp_path / "t.json"),
                "--lab", "--root", str(tmp_path / "lab"),
            ]
        )
        assert code == 2
        assert "--trace" in capsys.readouterr().err


class TestLabStatusMetrics:
    def test_metrics_table_after_sweep(self, grid_file, tmp_path, capsys):
        root = tmp_path / "lab"
        sweep(root, grid_file)
        capsys.readouterr()
        assert main(["lab", "status", "--root", str(root), "--metrics"]) == 0
        output = capsys.readouterr().out
        assert "backend" in output and "serial" in output
        assert "hit rate" in output

    def test_metrics_json_payload(self, grid_file, tmp_path, capsys):
        root = tmp_path / "lab"
        sweep(root, grid_file)
        capsys.readouterr()
        assert main(
            ["lab", "status", "--root", str(root), "--metrics", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        (entry,) = payload["run_metrics"]
        assert entry["metrics"]["backend"] == "serial"
        assert entry["metrics"]["jobs"] == 1


class TestLabHistory:
    def test_trend_after_two_sweeps(self, grid_file, tmp_path, capsys):
        root = tmp_path / "lab"
        sweep(root, grid_file)
        sweep(root, grid_file)
        capsys.readouterr()
        code = main(
            ["lab", "history", "--root", str(root), "--metric", "latency"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "latency" in output
        assert "obs-cli-demo" in output
        assert "(lower is better)" in output

    def test_json_points_span_both_runs(self, grid_file, tmp_path, capsys):
        root = tmp_path / "lab"
        sweep(root, grid_file)
        sweep(root, grid_file)
        capsys.readouterr()
        code = main(
            ["lab", "history", "--root", str(root), "--metric", "latency",
             "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["metric"] == "latency"
        assert payload["direction"] == "lower"
        assert len(payload["points"]) == 2
        assert len({p["run_id"] for p in payload["points"]}) == 2

    def test_summary_without_metric_lists_names(
        self, grid_file, tmp_path, capsys
    ):
        root = tmp_path / "lab"
        sweep(root, grid_file)
        capsys.readouterr()
        assert main(["lab", "history", "--root", str(root)]) == 0
        output = capsys.readouterr().out
        assert "latency" in output
        assert "elapsed_seconds" in output

    def test_unknown_metric_exits_two(self, grid_file, tmp_path, capsys):
        root = tmp_path / "lab"
        sweep(root, grid_file)
        capsys.readouterr()
        code = main(
            ["lab", "history", "--root", str(root), "--metric", "nope"]
        )
        assert code == 2
        assert "no points" in capsys.readouterr().err

    def test_flag_regressions_clean_exits_zero(
        self, grid_file, tmp_path, capsys
    ):
        root = tmp_path / "lab"
        sweep(root, grid_file)
        sweep(root, grid_file)
        capsys.readouterr()
        code = main(
            ["lab", "history", "--root", str(root), "--metric", "latency",
             "--flag-regressions"]
        )
        assert code == 0
        assert "no regressions" in capsys.readouterr().out

    def test_flag_regressions_exits_one_on_regression(
        self, tmp_path, capsys
    ):
        # Fabricated manifests with a 50% elapsed_seconds slip.
        def manifest(run_id, created, elapsed):
            return {
                "run_id": run_id,
                "created_at": created,
                "jobs": [
                    {
                        "job_id": "J",
                        "config_hash": "0" * 16,
                        "elapsed_seconds": elapsed,
                    }
                ],
            }

        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        a.write_text(json.dumps(manifest("r0", "2026-01-01T00:00:00Z", 1.0)))
        b.write_text(json.dumps(manifest("r1", "2026-01-02T00:00:00Z", 1.5)))
        root = tmp_path / "lab"
        root.mkdir()
        code = main(
            ["lab", "history", "--root", str(root),
             "--ingest", str(a), "--ingest", str(b),
             "--metric", "elapsed_seconds", "--flag-regressions"]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "regression" in err
        assert "1.5" in err

    def test_ingest_bench_artifact(self, tmp_path, capsys):
        bench = tmp_path / "BENCH_demo.json"
        bench.write_text(
            json.dumps(
                {
                    "benchmarks": [
                        {"name": "bench_a", "stats": {"mean": 0.25}}
                    ],
                    "repro_meta": {
                        "git_commit": "cafe",
                        "created_at": "2026-01-01T00:00:00Z",
                    },
                }
            )
        )
        root = tmp_path / "lab"
        root.mkdir()
        code = main(
            ["lab", "history", "--root", str(root), "--ingest", str(bench),
             "--metric", "mean_seconds", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        (point,) = payload["points"]
        assert point["value"] == 0.25
        assert point["git_commit"] == "cafe"


class TestLabIndexPrune:
    def delete_one_artifact(self, root) -> None:
        artifacts = sorted((root / "artifacts").rglob("*.json"))
        assert artifacts
        artifacts[0].unlink()

    def test_standalone_prune(self, grid_file, tmp_path, capsys):
        root = tmp_path / "lab"
        sweep(root, grid_file)
        self.delete_one_artifact(root)
        capsys.readouterr()
        assert main(
            ["lab", "index", "--root", str(root), "--prune-stale"]
        ) == 0
        assert "pruned 1" in capsys.readouterr().out
        assert main(
            ["lab", "index", "--root", str(root), "--prune-stale"]
        ) == 0
        assert "pruned 0" in capsys.readouterr().out

    def test_verify_with_prune(self, grid_file, tmp_path, capsys):
        root = tmp_path / "lab"
        sweep(root, grid_file)
        self.delete_one_artifact(root)
        capsys.readouterr()
        assert main(
            ["lab", "index", "--root", str(root), "--verify",
             "--prune-stale"]
        ) == 0
        assert "pruned 1" in capsys.readouterr().out
