"""Tests for model-vs-simulation validation."""

from __future__ import annotations

import pytest

from repro.analysis.validation import (
    validate_families,
    validate_family,
    weighted_measured_efficiency,
)
from repro.core.planner import AccessPlanner
from repro.mappings.linear import MatchedXorMapping
from repro.memory.config import MemoryConfig
from repro.memory.system import MemorySystem


@pytest.fixture
def buffered_system():
    return MemorySystem(
        MemoryConfig.matched(t=3, s=4, input_capacity=8, output_capacity=8)
    )


@pytest.fixture
def planner():
    return AccessPlanner(MatchedXorMapping(3, 4), 3)


class TestValidateFamily:
    def test_in_window_family_unit_cost(self, planner, buffered_system):
        validation = validate_family(
            planner, buffered_system, family=2, window_high=4, length=128
        )
        assert validation.conflict_free
        assert validation.measured_cycles_per_element == 1.0
        assert validation.relative_error == 0.0

    def test_out_of_window_cost_near_model(self, planner, buffered_system):
        for family, model in [(5, 2.0), (6, 4.0), (7, 8.0), (8, 8.0)]:
            validation = validate_family(
                planner,
                buffered_system,
                family=family,
                window_high=4,
                length=512,
            )
            assert validation.model_cycles_per_element == model
            assert validation.relative_error < 0.1, family


class TestValidateFamilies:
    def test_covers_requested_range(self, planner, buffered_system):
        validations = validate_families(
            planner, buffered_system, window_high=4, length=128, max_family=7
        )
        assert [v.family for v in validations] == list(range(8))


class TestWeightedEfficiency:
    def test_matches_closed_form(self, planner, buffered_system):
        validations = validate_families(
            planner, buffered_system, window_high=4, length=256, max_family=8
        )
        measured = weighted_measured_efficiency(validations, 3, 4)
        assert measured == pytest.approx(0.914, abs=0.03)
