"""Tests for the Section 5-E/5-G/5-H trade-off models."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.analysis.tradeoffs import (
    families_vs_length,
    matched_design_point,
    maximum_extra_families,
    ordered_design_point,
    unmatched_design_point,
    window_doubling_cost,
)
from repro.errors import ConfigurationError


class TestDesignPoints:
    def test_matched_point(self):
        point = matched_design_point(7, 3)
        assert point.modules == 8
        assert point.window_families == 5
        assert point.stride_fraction == Fraction(31, 32)

    def test_unmatched_point(self):
        point = unmatched_design_point(7, 3)
        assert point.modules == 64
        assert point.window_families == 10
        assert point.stride_fraction == Fraction(1023, 1024)

    def test_ordered_point(self):
        point = ordered_design_point(6, 3)
        assert point.modules == 64
        assert point.window_families == 4

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            matched_design_point(2, 3)
        with pytest.raises(ConfigurationError):
            ordered_design_point(2, 3)


class TestSquaringLaw:
    def test_doubling_cost_is_t(self):
        assert window_doubling_cost(7, 3) == 8.0

    def test_unmatched_modules_are_square_of_matched(self):
        matched = matched_design_point(7, 3)
        unmatched = unmatched_design_point(7, 3)
        assert unmatched.modules == matched.modules**2

    def test_added_families_carry_few_strides(self):
        """5-E: the extra families cover exponentially fewer strides."""
        matched = matched_design_point(7, 3)
        unmatched = unmatched_design_point(7, 3)
        gain = unmatched.stride_fraction - matched.stride_fraction
        assert gain == Fraction(31, 1024)  # < 1/32 for 56 extra modules


class TestMaxFamilies:
    def test_section_5g_bonus(self):
        assert maximum_extra_families(3) == 2
        assert maximum_extra_families(1) == 0
        with pytest.raises(ConfigurationError):
            maximum_extra_families(0)


class TestLengthSensitivity:
    def test_paper_values(self):
        sensitivity = families_vs_length(7, 3)
        assert sensitivity.ordered_any_length == 4
        assert sensitivity.proposed_any_length == 2
        assert sensitivity.proposed_fixed_length == 10

    def test_fixed_length_grows_with_lambda(self):
        counts = [
            families_vs_length(lam, 3).proposed_fixed_length
            for lam in range(3, 10)
        ]
        assert counts == sorted(counts)
        assert counts[0] == 2  # lambda = t: only x=s and x=y

    def test_crossover(self):
        """The proposed scheme beats ordered exactly when lambda > t+1."""
        for lam in range(3, 10):
            sensitivity = families_vs_length(lam, 3)
            beats = (
                sensitivity.proposed_fixed_length
                > sensitivity.ordered_any_length
            )
            assert beats == (lam > 4)
