"""Tests for the Section 5-A fraction model."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.analysis.fractions import (
    conflict_free_fraction,
    family_histogram,
    matched_design_fraction,
    monte_carlo_fraction,
    unmatched_design_fraction,
)
from repro.core.planner import AccessPlanner
from repro.errors import VectorSpecError
from repro.mappings.linear import MatchedXorMapping


class TestClosedForms:
    def test_paper_matched_value(self):
        assert matched_design_fraction(7, 3) == Fraction(31, 32)

    def test_paper_unmatched_value(self):
        assert unmatched_design_fraction(7, 3) == Fraction(1023, 1024)

    def test_window_zero(self):
        assert conflict_free_fraction(0) == Fraction(1, 2)

    def test_monotone_in_window(self):
        values = [conflict_free_fraction(w) for w in range(10)]
        assert values == sorted(values)
        assert all(v < 1 for v in values)

    def test_lambda_below_t_rejected(self):
        with pytest.raises(VectorSpecError):
            matched_design_fraction(2, 3)


class TestMonteCarlo:
    def test_close_to_analytic(self):
        planner = AccessPlanner(MatchedXorMapping(3, 4), 3)
        measured = monte_carlo_fraction(planner, 128, samples=800, seed=42)
        assert abs(measured - 31 / 32) < 0.03

    def test_deterministic_per_seed(self):
        planner = AccessPlanner(MatchedXorMapping(3, 4), 3)
        a = monte_carlo_fraction(planner, 128, samples=100, seed=1)
        b = monte_carlo_fraction(planner, 128, samples=100, seed=1)
        assert a == b


class TestFamilyHistogram:
    def test_matches_geometric_weights(self):
        histogram = family_histogram(samples=20000, seed=7)
        for family in range(4):
            expected = 2.0 ** -(family + 1)
            assert abs(histogram[family] - expected) < 0.02
