"""Tests for the design-space sweep helpers."""

from __future__ import annotations

import pytest

from repro.analysis.sweeps import (
    design_row,
    efficiency_crossover_t,
    sweep_lambda,
    sweep_t,
)
from repro.errors import ConfigurationError


class TestDesignRow:
    def test_paper_point(self):
        row = design_row(7, 3)
        assert row.matched_window == 5
        assert row.unmatched_window == 10
        assert row.vector_length == 128
        assert float(row.matched_efficiency) == pytest.approx(0.914, abs=1e-3)
        assert float(row.unmatched_efficiency) == pytest.approx(0.997, abs=1e-3)

    def test_degenerate_lambda_equals_t(self):
        row = design_row(3, 3)
        assert row.matched_window == 1
        assert row.unmatched_window == 2

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            design_row(2, 3)

    def test_advantage_at_t_zero_is_one(self):
        assert design_row(7, 0).advantage == 1.0


class TestSweeps:
    def test_lambda_sweep_monotone(self):
        rows = sweep_lambda(3, range(3, 12))
        efficiencies = [float(row.matched_efficiency) for row in rows]
        assert efficiencies == sorted(efficiencies)
        windows = [row.matched_window for row in rows]
        assert windows == list(range(1, 10))

    def test_t_sweep_skips_invalid(self):
        rows = sweep_t(5, range(0, 10))
        assert [row.t for row in rows] == list(range(0, 6))

    def test_lambda_sweep_skips_below_t(self):
        rows = sweep_lambda(4, range(0, 6))
        assert [row.lambda_exponent for row in rows] == [4, 5]


class TestCrossover:
    def test_paper_register_length(self):
        assert efficiency_crossover_t(7) == 4

    def test_longer_registers_tolerate_slower_memory(self):
        crossovers = [efficiency_crossover_t(lam) for lam in (6, 8, 10)]
        assert crossovers == sorted(crossovers)
