"""Tests for the design-space sweep helpers."""

from __future__ import annotations

import pytest

from repro.analysis.sweeps import (
    STANDARD_SWEEPS,
    SweepSpec,
    design_row,
    efficiency_crossover_t,
    sweep_lambda,
    sweep_t,
)
from repro.errors import ConfigurationError


class TestSweepSpec:
    def test_standard_sweeps_have_rows(self):
        for spec in STANDARD_SWEEPS:
            headers, rows = spec.table()
            assert headers[0] == "lambda"
            assert rows

    def test_lambda_spec_matches_sweep_lambda(self):
        spec = SweepSpec(axis="lambda", fixed=3, start=3, stop=11)
        assert spec.design_rows() == sweep_lambda(3, range(3, 11))

    def test_t_spec_matches_sweep_t(self):
        spec = SweepSpec(axis="t", fixed=7, start=0, stop=8)
        assert spec.design_rows() == sweep_t(7, range(0, 8))

    def test_bad_axis_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepSpec(axis="s", fixed=3, start=0, stop=4)

    def test_empty_range_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepSpec(axis="t", fixed=3, start=4, stop=4)

    def test_infeasible_t_range_rejected(self):
        # Every t in [5, 8) exceeds lambda=3: nothing would survive the
        # feasibility filter, so the spec itself must be rejected.
        with pytest.raises(ConfigurationError):
            SweepSpec(axis="t", fixed=3, start=5, stop=8)

    def test_infeasible_lambda_range_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepSpec(axis="lambda", fixed=6, start=2, stop=5)

    def test_negative_fixed_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepSpec(axis="t", fixed=-1, start=-3, stop=0)

    def test_negative_t_range_rejected(self):
        # All-negative t values would be filtered to an empty table.
        with pytest.raises(ConfigurationError):
            SweepSpec(axis="t", fixed=3, start=-5, stop=0)


class TestDesignRow:
    def test_paper_point(self):
        row = design_row(7, 3)
        assert row.matched_window == 5
        assert row.unmatched_window == 10
        assert row.vector_length == 128
        assert float(row.matched_efficiency) == pytest.approx(0.914, abs=1e-3)
        assert float(row.unmatched_efficiency) == pytest.approx(0.997, abs=1e-3)

    def test_degenerate_lambda_equals_t(self):
        row = design_row(3, 3)
        assert row.matched_window == 1
        assert row.unmatched_window == 2

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            design_row(2, 3)

    def test_advantage_at_t_zero_is_one(self):
        assert design_row(7, 0).advantage == 1.0


class TestSweeps:
    def test_lambda_sweep_monotone(self):
        rows = sweep_lambda(3, range(3, 12))
        efficiencies = [float(row.matched_efficiency) for row in rows]
        assert efficiencies == sorted(efficiencies)
        windows = [row.matched_window for row in rows]
        assert windows == list(range(1, 10))

    def test_t_sweep_skips_invalid(self):
        rows = sweep_t(5, range(0, 10))
        assert [row.t for row in rows] == list(range(0, 6))

    def test_lambda_sweep_skips_below_t(self):
        rows = sweep_lambda(4, range(0, 6))
        assert [row.lambda_exponent for row in rows] == [4, 5]


class TestCrossover:
    def test_paper_register_length(self):
        assert efficiency_crossover_t(7) == 4

    def test_longer_registers_tolerate_slower_memory(self):
        crossovers = [efficiency_crossover_t(lam) for lam in (6, 8, 10)]
        assert crossovers == sorted(crossovers)
