"""Tests for the Section 5-B efficiency model."""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.efficiency import (
    average_cycles_per_element,
    average_cycles_truncated,
    efficiency,
    family_cycles_per_element,
    matched_ordered_efficiency,
    matched_proposed_efficiency,
    unmatched_ordered_efficiency,
    unmatched_proposed_efficiency,
)
from repro.errors import VectorSpecError


class TestFamilyCost:
    def test_inside_window_unit_cost(self):
        for family in range(5):
            assert family_cycles_per_element(family, 4, 3) == 1

    def test_beyond_window_doubles(self):
        assert family_cycles_per_element(5, 4, 3) == 2
        assert family_cycles_per_element(6, 4, 3) == 4
        assert family_cycles_per_element(7, 4, 3) == 8

    def test_saturates_at_t(self):
        assert family_cycles_per_element(20, 4, 3) == 8

    def test_negative_family_rejected(self):
        with pytest.raises(VectorSpecError):
            family_cycles_per_element(-1, 4, 3)


class TestClosedForm:
    def test_paper_values(self):
        assert float(matched_proposed_efficiency(7, 3)) == pytest.approx(
            0.914, abs=5e-4
        )
        assert float(unmatched_proposed_efficiency(7, 3)) == pytest.approx(
            0.997, abs=5e-4
        )
        assert float(matched_ordered_efficiency(3)) == pytest.approx(0.4)
        assert float(unmatched_ordered_efficiency(6, 3)) == pytest.approx(
            0.842, abs=2e-3
        )

    def test_formula_shape(self):
        assert average_cycles_per_element(4, 3) == 1 + Fraction(3, 32)
        assert efficiency(4, 3) == Fraction(32, 35)

    @given(
        w=st.integers(min_value=0, max_value=12),
        t=st.integers(min_value=0, max_value=6),
    )
    def test_truncated_sum_converges_to_closed_form(self, w, t):
        """Summing per-family costs reproduces 1 + t/2**(w+1) exactly
        once the truncation reaches the saturation point ``w + t``."""
        truncated = average_cycles_truncated(w, t, max_family=w + t + 1)
        assert truncated == average_cycles_per_element(w, t)

    @given(
        w=st.integers(min_value=0, max_value=12),
        t=st.integers(min_value=0, max_value=6),
    )
    def test_efficiency_in_unit_interval(self, w, t):
        eta = efficiency(w, t)
        assert 0 < eta <= 1

    def test_wider_window_more_efficient(self):
        values = [float(efficiency(w, 3)) for w in range(10)]
        assert values == sorted(values)

    def test_invalid_unmatched_geometry(self):
        with pytest.raises(VectorSpecError):
            unmatched_ordered_efficiency(2, 3)
