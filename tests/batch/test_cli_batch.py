"""CLI wiring of the batch engine and the regression-gate floor flag.

``--engine batch`` must produce byte-identical JSON results, share
cache artifacts with the kernel engine, refuse the combinations that
cannot work (``--backend``, ``--trace``), and ``lab history
--absolute-floor`` must reach :meth:`HistoryDB.flag_regressions`.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.scenarios import (
    ComponentSpec,
    MemorySpec,
    ScenarioGrid,
    ScenarioSpec,
)


@pytest.fixture
def grid_file(tmp_path):
    base = ScenarioSpec(
        mapping=ComponentSpec.of("matched-xor", t=3, s=4),
        memory=MemorySpec(t=3),
        workload=ComponentSpec.of("strided", stride=1, length=64),
        name="cli-batch",
    )
    grid = ScenarioGrid.of(base, workload__params__stride=(1, 3, 8, 12))
    path = tmp_path / "grid.json"
    path.write_text(grid.to_json())
    return path


class TestScenarioRunEngine:
    def test_batch_engine_matches_kernel_json(self, grid_file, capsys):
        assert main(["scenario", "run", str(grid_file), "--json"]) == 0
        kernel = json.loads(capsys.readouterr().out)
        assert (
            main(
                [
                    "scenario",
                    "run",
                    str(grid_file),
                    "--json",
                    "--engine",
                    "batch",
                    "--validate",
                    "2",
                ]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert json.loads(captured.out) == kernel
        assert "2 validated" in captured.err

    def test_batch_engine_prints_partition_summary(self, grid_file, capsys):
        assert (
            main(["scenario", "run", str(grid_file), "--engine", "batch"])
            == 0
        )
        assert "analytic" in capsys.readouterr().out

    def test_trace_and_batch_engine_are_rejected(self, grid_file, capsys):
        code = main(
            [
                "scenario",
                "run",
                str(grid_file),
                "--engine",
                "batch",
                "--trace",
                "out.json",
            ]
        )
        assert code == 2
        assert "per-point simulator" in capsys.readouterr().err


class TestLabEngine:
    def test_sweep_batch_then_kernel_hits_the_same_cache(
        self, grid_file, tmp_path, capsys
    ):
        root = str(tmp_path / "lab")
        assert (
            main(
                [
                    "lab",
                    "sweep",
                    str(grid_file),
                    "--engine",
                    "batch",
                    "--root",
                    root,
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert (
            main(["lab", "sweep", str(grid_file), "--root", root]) == 0
        )
        assert "4 cache hits" in capsys.readouterr().out

    def test_engine_batch_with_explicit_backend_is_rejected(
        self, grid_file, tmp_path, capsys
    ):
        code = main(
            [
                "lab",
                "sweep",
                str(grid_file),
                "--engine",
                "batch",
                "--backend",
                "spool",
                "--root",
                str(tmp_path / "lab"),
            ]
        )
        assert code == 2
        assert "drop --backend" in capsys.readouterr().err

    def test_negative_validate_is_rejected_by_the_parser(self, grid_file):
        with pytest.raises(SystemExit):
            main(
                [
                    "scenario",
                    "run",
                    str(grid_file),
                    "--engine",
                    "batch",
                    "--validate",
                    "-1",
                ]
            )


class TestBatchWorkersFlag:
    @pytest.fixture
    def program_grid_file(self, tmp_path):
        path = tmp_path / "programs.json"
        path.write_text(
            json.dumps(
                {
                    "base": {
                        "name": "cli-workers",
                        "mapping": {
                            "kind": "matched-xor",
                            "params": {"t": 3, "s": 4},
                        },
                        "memory": {"t": 3, "q": 2},
                        "program": {
                            "kind": "daxpy",
                            "params": {"n": 32},
                        },
                        "drive": {"kind": "decoupled", "params": {}},
                    },
                    "axes": {"program.params.alpha": [1.5, 2.0, 3.0]},
                }
            )
        )
        return path

    def test_workers_match_serial_json(self, program_grid_file, capsys):
        assert (
            main(
                [
                    "scenario",
                    "run",
                    str(program_grid_file),
                    "--json",
                    "--engine",
                    "batch",
                ]
            )
            == 0
        )
        serial = json.loads(capsys.readouterr().out)
        assert (
            main(
                [
                    "scenario",
                    "run",
                    str(program_grid_file),
                    "--json",
                    "--engine",
                    "batch",
                    "--batch-workers",
                    "2",
                ]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert json.loads(captured.out) == serial
        assert "2 workers" in captured.err
        assert "3 fallback" in captured.err

    def test_workers_without_batch_engine_is_rejected(
        self, grid_file, capsys
    ):
        code = main(
            [
                "scenario",
                "run",
                str(grid_file),
                "--batch-workers",
                "2",
            ]
        )
        assert code == 2
        assert "--engine batch" in capsys.readouterr().err

    def test_lab_sweep_records_the_worker_count(
        self, program_grid_file, tmp_path, capsys
    ):
        root = tmp_path / "lab"
        assert (
            main(
                [
                    "lab",
                    "sweep",
                    str(program_grid_file),
                    "--engine",
                    "batch",
                    "--batch-workers",
                    "2",
                    "--root",
                    str(root),
                ]
            )
            == 0
        )
        manifests = list((root / "runs").glob("*/manifest.json"))
        assert len(manifests) == 1
        metrics = json.loads(manifests[0].read_text())["metrics"]
        assert metrics["batch_workers"] == 2
        assert metrics["batch_fallback"] == 3
        assert "plan_cache_hits" in metrics

    def test_negative_workers_are_rejected_by_the_parser(self, grid_file):
        with pytest.raises(SystemExit):
            main(
                [
                    "scenario",
                    "run",
                    str(grid_file),
                    "--engine",
                    "batch",
                    "--batch-workers",
                    "-2",
                ]
            )


class TestHistoryFloor:
    def manifest(self, tmp_path, index, elapsed):
        path = tmp_path / f"manifest_{index}.json"
        path.write_text(
            json.dumps(
                {
                    "run_id": f"r{index}",
                    "created_at": f"2026-01-0{index + 1}T00:00:00Z",
                    "jobs": [
                        {
                            "job_id": "demo-job",
                            "config_hash": "0" * 16,
                            "elapsed_seconds": elapsed,
                        }
                    ],
                }
            )
        )
        return path

    def run_history(self, tmp_path, *extra):
        return main(
            [
                "lab",
                "history",
                "--root",
                str(tmp_path / "lab"),
                "--ingest",
                str(self.manifest(tmp_path, 0, 0.0)),
                "--ingest",
                str(self.manifest(tmp_path, 1, 0.04)),
                "--metric",
                "elapsed_seconds",
                "--flag-regressions",
                *extra,
            ]
        )

    def test_zero_best_slip_fails_the_gate_by_default(
        self, tmp_path, capsys
    ):
        assert self.run_history(tmp_path) == 1
        assert "regression(s) flagged" in capsys.readouterr().err

    def test_absolute_floor_grants_explicit_slack(self, tmp_path, capsys):
        assert (
            self.run_history(tmp_path, "--absolute-floor", "0.1") == 0
        )
        assert "no regressions" in capsys.readouterr().out
