"""The batch evaluator against the per-point kernel, field for field.

The equivalence sweep spans every mapping kind, conflict-free and
conflict-prone strides, forced and tolerant plan modes, indexed
workloads, multi-access kernels and the fallback drives — every spec
evaluates through :func:`evaluate_batch` and :func:`simulate` and the
two ``to_dict()`` payloads must be identical.  The rest pins the
engine mechanics: partition counts, the validation sampler, error
capture/raise parity, numpy-vs-stdlib equality, and the
:class:`BatchBackend`'s payload/caching interchangeability with the
serial lab path.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.batch import (
    BatchBackend,
    BatchValidationError,
    evaluate_batch,
)
from repro.batch.engine import _validation_sample
from repro.errors import OrderingError, SimulationError
from repro.scenarios import ScenarioSpec, simulate, simulate_grid
from repro.scenarios.grid import ScenarioGrid


def spec_of(name, mapping, workload, *, memory=None, drive=None):
    data = {"name": name, "mapping": mapping, "workload": workload}
    if memory:
        data["memory"] = memory
    if drive:
        data["drive"] = drive
    return ScenarioSpec.from_dict(data)


def strided(base=0, stride=1, length=64):
    return {
        "kind": "strided",
        "params": {"base": base, "stride": stride, "length": length},
    }


MATCHED = {"kind": "matched-xor", "params": {"t": 3, "s": 4}}
SECTION = {"kind": "section-xor", "params": {"t": 2, "s": 3, "y": 7}}
INTERLEAVED = {"kind": "interleaved", "params": {"m": 3}}
SKEWED = {"kind": "skewed", "params": {"m": 3, "s": 4}}
PSEUDO = {"kind": "pseudo-random", "params": {"m": 3}}


def equivalence_specs():
    """A sweep hitting the analytic, SoA and fallback tiers."""
    specs = []
    for label, mapping, t in [
        ("matched", MATCHED, 3),
        ("section", SECTION, 2),
        ("interleaved", INTERLEAVED, 3),
        ("skewed", SKEWED, 3),
        ("pseudo", PSEUDO, 3),
    ]:
        for stride in (1, 3, 8, 12):
            for mode in ("auto", "ordered"):
                for q in (1, 2):
                    specs.append(
                        spec_of(
                            f"{label}-s{stride}-{mode}-q{q}",
                            mapping,
                            strided(stride=stride, length=64),
                            memory={"t": t, "q": q},
                            drive={
                                "kind": "planner",
                                "params": {"mode": mode},
                            },
                        )
                    )
    # Forced subsequence mode (feasible geometry) goes through the real
    # planner inside the batch engine too.
    specs.append(
        spec_of(
            "forced-subsequence",
            MATCHED,
            strided(stride=2, length=128),
            memory={"t": 3},
            drive={"kind": "planner", "params": {"mode": "subsequence"}},
        )
    )
    # Indexed workloads: no closed form, always the SoA tier.
    specs.append(
        spec_of(
            "gather",
            MATCHED,
            {
                "kind": "gather",
                "params": {"indices": [3, 1, 4, 1, 5, 9, 2, 6], "base": 0},
            },
            memory={"t": 3},
        )
    )
    specs.append(
        spec_of(
            "bitrev",
            MATCHED,
            {"kind": "bit-reversal", "params": {"bits": 6}},
            memory={"t": 3},
        )
    )
    # A multi-access kernel: column sweeps share one memory system.
    specs.append(
        spec_of(
            "columns",
            MATCHED,
            {"kind": "matrix-columns", "params": {"rows": 32, "cols": 4}},
            memory={"t": 3},
        )
    )
    # Fallback tier: the figure6 and decoupled drives.
    specs.append(
        spec_of(
            "figure6",
            MATCHED,
            strided(stride=8, length=64),
            memory={"t": 3, "q": 2},
            drive={"kind": "figure6", "params": {}},
        )
    )
    specs.append(
        ScenarioSpec.from_dict(
            {
                "name": "program",
                "mapping": MATCHED,
                "memory": {"t": 3, "q": 2},
                "program": {
                    "kind": "daxpy",
                    "params": {"alpha": 2.0, "n": 64},
                },
                "drive": {"kind": "decoupled", "params": {}},
            }
        )
    )
    return specs


class TestEquivalence:
    @pytest.mark.parametrize("use_numpy", [False, None])
    def test_every_spec_matches_the_kernel(self, use_numpy):
        specs = equivalence_specs()
        report = evaluate_batch(specs, use_numpy=use_numpy)
        assert len(report.results) == len(specs)
        for spec, result in zip(specs, report.results):
            assert result.to_dict() == simulate(spec).to_dict(), spec.name

    def test_all_three_tiers_are_exercised(self):
        report = evaluate_batch(equivalence_specs())
        assert report.analytic_count > 0
        assert report.soa_count > 0
        assert report.fallback_count > 0

    def test_analytic_results_claim_only_conflict_free_points(self):
        # The analytic tier's defining claim: whatever it answers is a
        # conflict-free point with zero stalls and exact T+L+1 latency.
        from repro.batch import analytic_result

        for spec in equivalence_specs():
            result = analytic_result(spec)
            if result is None:
                continue
            assert result.conflict_free is True
            assert result.issue_stalls == 0
            assert result.wait_count == 0
            assert result.latency == result.minimum_latency

    def test_numpy_and_stdlib_paths_are_identical(self):
        specs = equivalence_specs()
        with_numpy = evaluate_batch(specs, use_numpy=None).results
        stdlib = evaluate_batch(specs, use_numpy=False).results
        for fast, plain in zip(with_numpy, stdlib):
            assert fast.to_dict() == plain.to_dict()

    def test_simulate_grid_engines_agree(self):
        grid = ScenarioGrid.of(
            ScenarioSpec.from_dict(
                {
                    "name": "grid",
                    "mapping": MATCHED,
                    "memory": {"t": 3},
                    "workload": strided(length=64),
                }
            ),
            workload__params__stride=[1, 3, 8, 12],
            memory__q=[1, 2],
        )
        batch = simulate_grid(grid, engine="batch", validate=3)
        kernel = simulate_grid(grid, engine="kernel")
        assert [r.to_dict() for r in batch] == [
            r.to_dict() for r in kernel
        ]

    def test_unknown_engine_is_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="unknown evaluation"):
            simulate_grid([], engine="warp")


class TestErrorParity:
    def infeasible(self):
        # Family x=0 (odd stride) with L=8 < chunk 2**(4+3-0): the
        # forced conflict-free mode must raise.
        return spec_of(
            "infeasible",
            MATCHED,
            strided(stride=3, length=8),
            memory={"t": 3},
            drive={"kind": "planner", "params": {"mode": "conflict_free"}},
        )

    def test_forced_mode_raises_exactly_like_simulate(self):
        spec = self.infeasible()
        with pytest.raises(OrderingError) as kernel_error:
            simulate(spec)
        with pytest.raises(OrderingError) as batch_error:
            evaluate_batch([spec])
        assert str(batch_error.value) == str(kernel_error.value)

    def test_capture_mode_records_the_error_in_place(self):
        good = spec_of(
            "good", MATCHED, strided(stride=1, length=64), memory={"t": 3}
        )
        report = evaluate_batch(
            [good, self.infeasible(), good], on_error="capture"
        )
        assert report.results[0].to_dict() == simulate(good).to_dict()
        assert isinstance(report.results[1], OrderingError)
        assert report.results[2].to_dict() == report.results[0].to_dict()

    def test_unknown_on_error_mode_is_rejected(self):
        with pytest.raises(SimulationError, match="on_error"):
            evaluate_batch([], on_error="ignore")


class TestValidation:
    def test_sample_spreads_evenly(self):
        assert _validation_sample(3, 10) == [0, 3, 6]
        assert _validation_sample(99, 4) == [0, 1, 2, 3]
        assert _validation_sample(0, 10) == []
        assert _validation_sample(5, 0) == []

    def test_validated_count_is_reported(self):
        specs = equivalence_specs()[:10]
        report = evaluate_batch(specs, validate=4)
        assert report.validated_count == 4

    def test_injected_mismatch_raises_batch_validation_error(
        self, monkeypatch
    ):
        spec = spec_of(
            "point", MATCHED, strided(stride=1, length=64), memory={"t": 3}
        )
        reference = simulate(spec)

        def skewed_simulate(target, tracer=None):
            return dataclasses.replace(
                reference, latency=reference.latency + 1
            )

        monkeypatch.setattr(
            "repro.batch.engine.simulate", skewed_simulate
        )
        with pytest.raises(BatchValidationError, match="latency"):
            evaluate_batch([spec], validate=1)


class TestBatchBackend:
    def scenario_jobs(self):
        from repro.lab.jobs import scenario_job

        return [
            scenario_job(
                spec_of(
                    f"bb-{stride}",
                    MATCHED,
                    strided(stride=stride, length=64),
                    memory={"t": 3},
                )
            )
            for stride in (1, 3, 8, 12)
        ]

    def test_payloads_match_execute_job(self):
        from repro.lab.jobs import execute_job

        jobs = self.scenario_jobs()
        backend = BatchBackend()
        batched = {
            job.job_id: payload
            for job, payload in backend.run(jobs, run_id="parity")
        }
        assert set(backend.backend_metrics()) >= {
            "batch_jobs",
            "batch_analytic",
            "batch_soa",
        }
        for job in jobs:
            want = execute_job(job)
            got = dict(batched[job.job_id])
            # Wall-clock is the one legitimately engine-dependent field.
            got.pop("elapsed_seconds")
            want.pop("elapsed_seconds")
            assert got == want

    def test_non_scenario_jobs_are_delegated(self):
        from repro.lab.jobs import build_registry

        experiment = build_registry()["E01"]
        jobs = self.scenario_jobs()[:1] + [experiment]
        backend = BatchBackend()
        outcomes = dict(backend.run(jobs, run_id="mixed"))
        assert outcomes[experiment]["all_passed"] is True
        assert backend.backend_metrics()["batch_delegated"] == 1

    def test_job_errors_become_failures_not_crashes(self, tmp_path):
        from repro.lab import ArtifactStore, run_jobs, scenario_job

        bad = scenario_job(
            spec_of(
                "bad",
                MATCHED,
                strided(stride=3, length=8),
                memory={"t": 3},
                drive={
                    "kind": "planner",
                    "params": {"mode": "conflict_free"},
                },
            )
        )
        good = self.scenario_jobs()[0]
        store = ArtifactStore(tmp_path / "lab")
        report = run_jobs(
            [good, bad], store=store, backend=BatchBackend()
        )
        failed = {o.spec.job_id for o in report.failures}
        assert failed == {bad.job_id}

    def test_artifacts_interchange_with_the_serial_backend(self, tmp_path):
        from repro.lab import ArtifactStore, run_jobs

        jobs = self.scenario_jobs()
        store = ArtifactStore(tmp_path / "lab")
        first = run_jobs(jobs, store=store, backend=BatchBackend())
        assert first.executed == len(jobs)
        second = run_jobs(jobs, store=store, backend="serial")
        assert second.cache_hits == len(jobs)
        assert second.executed == 0
