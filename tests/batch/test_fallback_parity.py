"""The sharded fallback tier, pinned field-for-field against serial.

``--batch-workers`` must be invisible in every output: for every
registered program kind, across stream counts, a parallel
``evaluate_batch`` must return ``to_dict()`` payloads identical to the
serial tier's, captured errors must render the same canonical
``TypeName: message`` string, worker counts must normalise predictably,
and lab artifacts written by a parallel batch must be pure cache hits
for every other execution path.
"""

from __future__ import annotations

import pytest

from repro.batch import (
    BatchBackend,
    evaluate_batch,
    resolve_fallback_workers,
    run_fallback_tier,
)
from repro.errors import SimulationError
from repro.scenarios import ScenarioSpec
from repro.scenarios.registry import PROGRAM, kinds

MAPPING = {"kind": "matched-xor", "params": {"t": 3, "s": 4}}

#: Small-n parameters per program kind: every registered kind appears,
#: sized so the whole suite stays in tier-1 territory.
PROGRAM_PARAMS = {
    "instructions": {
        "lines": [
            ".init base=0, stride=4, values=1;2;3;4",
            "vload v1, base=0, stride=4, length=4",
            "vscale v2, v1, scalar=2.0, length=4",
            "vstore v2, base=512, stride=1, length=4",
        ]
    },
    "asm": {
        "text": (
            ".fill base=0, stride=4, count=32, value=1.5\n"
            "vload v1, base=0, stride=4, length=32\n"
            "vadd v2, v1, v1, length=32\n"
            "vstore v2, base=512, stride=1, length=32"
        )
    },
    "daxpy": {"n": 32},
    "elementwise-product": {"n": 32},
    "saxpy-chain": {"n": 32},
    "load-store-copy": {"n": 32},
    "fft-butterfly": {"n": 32, "stage": 2},
    "vsum": {"n": 32},
    "gather": {"n": 32},
    "scatter": {"n": 32},
}


def program_spec(kind: str, streams: int) -> ScenarioSpec:
    return ScenarioSpec.from_dict(
        {
            "name": f"parity-{kind}-s{streams}",
            "mapping": MAPPING,
            "memory": {"t": 3, "q": 2},
            "program": {"kind": kind, "params": PROGRAM_PARAMS[kind]},
            "drive": {
                "kind": "decoupled",
                "params": {"chaining": False, "memory_streams": streams},
            },
        }
    )


def test_every_registered_program_kind_is_covered():
    assert set(PROGRAM_PARAMS) == set(kinds(PROGRAM))


class TestFieldForFieldParity:
    @pytest.mark.parametrize("kind", sorted(PROGRAM_PARAMS))
    def test_program_kinds_across_stream_counts(self, kind):
        specs = [program_spec(kind, streams) for streams in (1, 2, 4)]
        serial = evaluate_batch(specs)
        parallel = evaluate_batch(specs, workers=2)
        assert serial.fallback_count == parallel.fallback_count == 3
        assert parallel.workers == 2
        for left, right in zip(serial.results, parallel.results):
            assert left.to_dict() == right.to_dict()

    def test_ordering_is_input_order_not_completion_order(self):
        # More points than chunks, deliberately non-uniform sizes, so a
        # fast chunk finishing first would scramble naive assembly.
        specs = [
            program_spec("daxpy", 1),
            program_spec("vsum", 2),
            program_spec("saxpy-chain", 1),
            program_spec("load-store-copy", 2),
            program_spec("gather", 1),
            program_spec("scatter", 2),
        ]
        results = run_fallback_tier(specs, workers=3)
        for spec, result in zip(specs, results):
            assert result.name == spec.name


class TestErrorParity:
    def failing_spec(self) -> ScenarioSpec:
        # ports > module count fails inside simulate(), after
        # prepare_point has already routed the spec to the fallback
        # tier — the exact failure shape the tier must carry across
        # the process boundary.
        return ScenarioSpec.from_dict(
            {
                "name": "parity-broken",
                "mapping": MAPPING,
                "memory": {"t": 3, "ports": 16},
                "program": {"kind": "daxpy", "params": {"n": 32}},
                "drive": {"kind": "decoupled", "params": {}},
            }
        )

    def test_captured_error_strings_match_serial(self):
        from repro.lab.backends import describe_error

        specs = [
            program_spec("daxpy", 1),
            self.failing_spec(),
            program_spec("vsum", 1),
        ]
        serial = run_fallback_tier(specs, workers=1, on_error="capture")
        parallel = run_fallback_tier(specs, workers=2, on_error="capture")
        assert isinstance(serial[1], BaseException)
        assert isinstance(parallel[1], BaseException)
        assert (
            describe_error(serial[1]).message
            == describe_error(parallel[1]).message
        )
        for index in (0, 2):
            assert serial[index].to_dict() == parallel[index].to_dict()

    def test_raise_mode_raises_in_parallel_too(self):
        from repro.errors import ConfigurationError

        specs = [program_spec("daxpy", 1), self.failing_spec()]
        with pytest.raises(ConfigurationError, match="module count"):
            run_fallback_tier(specs, workers=2, on_error="raise")

    def test_rebuilt_error_keeps_the_original_type_name(self):
        from repro.batch.fallback import _rebuild_error
        from repro.lab.backends import describe_error

        error = _rebuild_error("UnpicklableError", "socket went away")
        assert (
            describe_error(error).message
            == "UnpicklableError: socket went away"
        )


class TestWorkerKnob:
    def test_none_is_serial_and_zero_is_per_cpu(self):
        from repro.lab.backends import default_worker_count

        assert resolve_fallback_workers(None) == 1
        assert resolve_fallback_workers(1) == 1
        assert resolve_fallback_workers(3) == 3
        assert resolve_fallback_workers(0) == default_worker_count()

    @pytest.mark.parametrize("bad", [-1, True, 2.5, "four"])
    def test_invalid_worker_counts_are_rejected(self, bad):
        with pytest.raises(SimulationError, match="batch workers"):
            resolve_fallback_workers(bad)

    def test_report_records_the_resolved_width(self):
        specs = [program_spec("daxpy", 1), program_spec("daxpy", 2)]
        assert evaluate_batch(specs).workers == 1
        assert evaluate_batch(specs, workers=2).workers == 2


class TestCacheKeyInterchange:
    def test_parallel_artifacts_are_cache_hits_everywhere(self, tmp_path):
        from repro.lab import ArtifactStore, run_jobs
        from repro.lab.jobs import scenario_job

        jobs = [
            scenario_job(program_spec(kind, streams))
            for kind in ("daxpy", "vsum", "saxpy-chain")
            for streams in (1, 2)
        ]
        store = ArtifactStore(tmp_path / "lab")
        first = run_jobs(
            jobs, store=store, backend=BatchBackend(workers=2)
        )
        assert first.executed == len(jobs)
        assert first.metrics["batch_workers"] == 2
        serial_batch = run_jobs(
            jobs, store=store, backend=BatchBackend()
        )
        assert serial_batch.cache_hits == len(jobs)
        kernel = run_jobs(jobs, store=store, backend="serial")
        assert kernel.cache_hits == len(jobs)
        assert kernel.executed == 0
