"""The closed-form planner shortcuts, pinned against the real planner.

:func:`cf_order_feasible` claims to mirror ``AccessPlanner._conflict_free``
exactly wherever it answers ``True``/``False``; the geometry sweep here
holds it to that across every proven mapping kind, stride family
(including negative and odd strides), length (including non-chunk
lengths and length 1) and base.  ``canonical_modules`` and
``modules_conflict_free`` are pinned value-for-value against the
stdlib ``module_sequence``/``is_conflict_free`` references, with and
without numpy.
"""

from __future__ import annotations

import pytest

from repro.batch._accel import numpy_enabled
from repro.batch.fastpath import (
    canonical_modules,
    cf_order_feasible,
    modules_conflict_free,
)
from repro.core.distributions import is_conflict_free
from repro.core.planner import AccessPlanner
from repro.core.vector import VectorAccess
from repro.errors import OrderingError
from repro.mappings.interleaved import FieldInterleaved, LowOrderInterleaved
from repro.mappings.linear import MatchedXorMapping
from repro.mappings.section import SectionXorMapping
from repro.mappings.skewed import SkewedMapping

#: (mapping, planner t) pairs spanning every branch of the shortcut:
#: truly matched XOR (both s == t and s > t), unmatched Eq. (1)
#: (module bits above t — undecided), section XOR (matched and
#: t-mismatched), and the mappings outside the closed forms.
CASES = [
    (MatchedXorMapping(3, 4), 3),
    (MatchedXorMapping(3, 3), 3),
    (MatchedXorMapping(2, 5), 2),
    (MatchedXorMapping(4, 6), 3),
    (SectionXorMapping(3, 4, 9), 3),
    (SectionXorMapping(2, 3, 7), 2),
    (SectionXorMapping(3, 4, 8), 2),
    (LowOrderInterleaved(3), 3),
    (FieldInterleaved(3, 4), 3),
    (SkewedMapping(3, 4, distance=3), 3),
]

STRIDES = [1, 2, 3, 4, 5, 7, 8, 12, 16, 24, 96, -3, -8]
LENGTHS = [1, 4, 8, 16, 24, 64, 128]
BASES = [0, 5, 64]


def sweep():
    for mapping, t in CASES:
        planner = AccessPlanner(mapping, t)
        for stride in STRIDES:
            for length in LENGTHS:
                for base in BASES:
                    yield planner, mapping, t, VectorAccess(
                        base, stride, length
                    )


class TestCfOrderFeasible:
    def test_matches_the_planner_across_the_geometry_sweep(self):
        verdicts = {True: 0, False: 0, None: 0}
        for planner, mapping, t, access in sweep():
            verdict = cf_order_feasible(mapping, t, access)
            verdicts[verdict] += 1
            if verdict is None:
                continue
            where = (mapping.describe(), t, access)
            try:
                plan = planner.plan(access, mode="conflict_free")
            except OrderingError:
                assert verdict is False, where
            else:
                assert verdict is True, where
                # Success is not merely "an order exists": the produced
                # plan is always conflict-free, which is what lets the
                # analytic tier skip measurement entirely.
                assert plan.conflict_free, where
        # The sweep must actually exercise all three answers.
        assert verdicts[True] > 0
        assert verdicts[False] > 0
        assert verdicts[None] > 0

    def test_unmatched_eq1_memory_is_undecided(self):
        # m != t: the alignment key sets can differ across subsequences,
        # so the closed form stays silent and the planner decides.
        mapping = MatchedXorMapping(4, 6)
        access = VectorAccess(0, 2, 64)
        assert cf_order_feasible(mapping, 3, access) is None

    def test_section_planner_t_mismatch_is_undecided(self):
        mapping = SectionXorMapping(3, 4, 8)
        access = VectorAccess(0, 2, 64)
        assert cf_order_feasible(mapping, 2, access) is None

    def test_mapping_without_window_structure_is_refused(self):
        mapping = LowOrderInterleaved(3)
        access = VectorAccess(0, 1, 64)
        assert cf_order_feasible(mapping, 3, access) is False
        with pytest.raises(OrderingError):
            AccessPlanner(mapping, 3).plan(access, mode="conflict_free")

    def test_subclassed_mapping_is_undecided(self):
        # A subclass may override module_of; the closed form only
        # vouches for the exact paper mappings.
        class Tweaked(MatchedXorMapping):
            def module_of(self, address: int) -> int:
                return super().module_of(address ^ 1)

        access = VectorAccess(0, 1, 64)
        assert cf_order_feasible(Tweaked(3, 4), 3, access) is None

    def test_non_mapping_object_is_undecided(self):
        assert cf_order_feasible(object(), 3, VectorAccess(0, 1, 8)) is None


@pytest.mark.parametrize("use_numpy", [False, None])
class TestCanonicalModules:
    def test_matches_module_sequence(self, use_numpy):
        for mapping, _t in CASES:
            for stride in (1, 3, 8, 12, -3):
                for base in (0, 7):
                    access = VectorAccess(base, stride, 65)
                    got = list(
                        canonical_modules(
                            mapping, access, use_numpy=use_numpy
                        )
                    )
                    want = mapping.module_sequence(base, stride, 65)
                    assert got == want, (mapping.describe(), access)

    def test_huge_base_takes_the_exact_path(self, use_numpy):
        # Past the int64 guard the arbitrary-precision stdlib loop must
        # serve — silently, with identical values after reduction.
        mapping = MatchedXorMapping(3, 4)
        access = VectorAccess((1 << 62) + 5, 3, 33)
        got = list(canonical_modules(mapping, access, use_numpy=use_numpy))
        assert got == mapping.module_sequence(access.base, 3, 33)


class TestModulesConflictFree:
    @pytest.mark.parametrize("use_numpy", [False, None])
    def test_matches_reference_over_canonical_sequences(self, use_numpy):
        checked = 0
        for mapping, t in CASES:
            service = 1 << t
            for stride in (1, 3, 8, 12, 96):
                access = VectorAccess(0, stride, 64)
                modules = canonical_modules(
                    mapping, access, use_numpy=use_numpy
                )
                assert modules_conflict_free(
                    modules, service, use_numpy=use_numpy
                ) == is_conflict_free(list(modules), service)
                checked += 1
        assert checked > 0

    def test_service_ratio_one_is_always_conflict_free(self):
        assert modules_conflict_free([0, 0, 0], 1) is True

    def test_ndarray_input_agrees_with_list_input(self):
        if not numpy_enabled(None):
            pytest.skip("numpy is not installed")
        import numpy as np

        for modules in ([0, 1, 2, 3, 0, 1, 2, 3], [0, 1, 0, 2], [5], []):
            array = np.asarray(modules, dtype=np.int64)
            for service in (2, 4, 8):
                assert modules_conflict_free(
                    array, service
                ) == is_conflict_free(list(modules), service)
