"""The ``ports`` axis on the scenario program path.

Covers the declarative surface of the multi-port machine: the
``memory.ports`` spec field (round-trip, validation, provenance of
errors), grid sweeps over ports, the new occupancy extras and their
direction-aware classification in ``scenario diff``, and the new
reduction/gather/scatter program kinds.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.scenarios import (
    ComponentSpec,
    MemorySpec,
    ScenarioGrid,
    ScenarioSpec,
    diff_results,
    simulate,
)
from repro.scenarios.registry import PROGRAM, kinds


def program_spec(kind, params, *, ports=1, drive_params=None, name=""):
    return ScenarioSpec(
        mapping=ComponentSpec.of("section-xor", t=3, s=4, y=9),
        memory=MemorySpec(t=3, q=2, ports=ports),
        program=ComponentSpec.of(kind, **params),
        drive=ComponentSpec.of("decoupled", **(drive_params or {})),
        name=name,
    )


class TestPortsSpecField:
    def test_round_trip(self):
        spec = program_spec("daxpy", {"n": 96}, ports=2)
        assert ScenarioSpec.from_json(spec.to_json()) == spec
        assert spec.memory.ports == 2
        assert json.loads(spec.to_json())["memory"]["ports"] == 2

    def test_default_is_one(self):
        data = {"t": 3}
        assert MemorySpec.from_dict(data).ports == 1

    def test_ports_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="'ports'"):
            MemorySpec(t=3, ports=0)

    def test_ports_must_be_integer(self):
        with pytest.raises(ConfigurationError, match="'ports'"):
            MemorySpec(t=3, ports="two")

    def test_ports_exceeding_modules_names_the_field(self):
        spec = program_spec("daxpy", {"n": 96}, ports=128)
        with pytest.raises(ConfigurationError, match="memory.ports"):
            simulate(spec)

    def test_describe_mentions_ports_only_when_widened(self):
        assert "ports" not in program_spec("daxpy", {"n": 8}).describe()
        assert "ports=2" in program_spec("daxpy", {"n": 8}, ports=2).describe()


class TestPortsOnTheProgramPath:
    def test_ports_speed_up_daxpy(self):
        totals = {}
        for ports in (1, 2):
            result = simulate(program_spec("daxpy", {"n": 128}, ports=ports))
            extras = dict(result.extras)
            assert extras["numerically_correct"] is True
            assert extras["memory_ports"] == ports
            totals[ports] = extras["total_cycles"]
        assert totals[2] < totals[1]

    def test_occupancy_extras_reported(self):
        extras = dict(
            simulate(program_spec("daxpy", {"n": 128}, ports=2)).extras
        )
        assert extras["memory_streams"] == 2
        assert extras["stream_concurrency_peak"] == 2

    def test_memory_streams_drive_override(self):
        extras = dict(
            simulate(
                program_spec(
                    "daxpy",
                    {"n": 128},
                    ports=1,
                    drive_params={"memory_streams": 2},
                )
            ).extras
        )
        assert extras["memory_ports"] == 1
        assert extras["memory_streams"] == 2
        assert extras["stream_concurrency_peak"] == 2

    def test_chaining_model_only_on_serial_unit(self):
        chained = {"chaining": True}
        serial = dict(
            simulate(
                program_spec("saxpy-chain", {"n": 96}, drive_params=chained)
            ).extras
        )
        assert serial["chaining_model_applicable"] is True
        widened = dict(
            simulate(
                program_spec(
                    "saxpy-chain", {"n": 96}, ports=2, drive_params=chained
                )
            ).extras
        )
        assert widened["chaining_model_applicable"] is False
        assert "chaining_speedup_model" not in widened

    def test_timeline_rows_include_port_and_stream(self):
        result = simulate(program_spec("daxpy", {"n": 128}, ports=2))
        record = result.to_dict()
        memory_rows = [
            row for row in record["timeline"] if row["unit"] == "memory"
        ]
        assert {row["port"] for row in memory_rows} == {0, 1}
        assert all("stream" in row for row in memory_rows)


class TestPortsGrid:
    def test_grid_sweeps_ports(self):
        grid = ScenarioGrid.of(
            program_spec("daxpy", {"n": 96}, name="sweep"),
            memory__ports=(1, 2, 4),
        )
        specs = grid.expand()
        assert [spec.memory.ports for spec in specs] == [1, 2, 4]
        assert ScenarioGrid.from_json(grid.to_json()).expand() == specs

    def test_committed_example_grid(self):
        from pathlib import Path

        from repro.scenarios import load_grid

        text = Path("examples/scenario_ports_grid.json").read_text()
        grid = load_grid(text)
        assert [spec.memory.ports for spec in grid.expand()] == [1, 2, 4]


class TestDiffClassification:
    def test_lost_concurrency_is_a_regression(self):
        wide = simulate(program_spec("daxpy", {"n": 128}, ports=2)).to_dict()
        narrow = simulate(program_spec("daxpy", {"n": 128}, ports=1)).to_dict()
        diff = diff_results(wide, narrow)
        regressed = {entry.metric for entry in diff.regressions}
        assert "extra:stream_concurrency_peak" in regressed
        assert "extra:overlap_fraction" in regressed
        # Port/stream *counts* are design choices, not regressions.
        changed = {entry.metric for entry in diff.changes}
        assert "extra:memory_ports" in changed
        assert "extra:memory_streams" in changed

    def test_gained_concurrency_is_an_improvement(self):
        narrow = simulate(program_spec("daxpy", {"n": 128}, ports=1)).to_dict()
        wide = simulate(program_spec("daxpy", {"n": 128}, ports=2)).to_dict()
        diff = diff_results(narrow, wide)
        improved = {entry.metric for entry in diff.improvements}
        assert "extra:stream_concurrency_peak" in improved
        assert not diff.has_regressions


class TestNewProgramKinds:
    def test_registered(self):
        registered = kinds(PROGRAM)
        for kind in ("vsum", "gather", "scatter"):
            assert kind in registered

    @pytest.mark.parametrize(
        "kind,params",
        [
            ("vsum", {"n": 96}),
            ("vsum", {"n": 200, "src_stride": 4}),
            ("gather", {"n": 96}),
            ("gather", {"n": 100, "table_size": 256, "seed": 3}),
            ("scatter", {"n": 96}),
            ("scatter", {"n": 150, "seed": 7}),
        ],
    )
    def test_numerically_correct(self, kind, params):
        extras = dict(simulate(program_spec(kind, params)).extras)
        assert extras["numerically_correct"] is True

    def test_vsum_strip_mines_past_register_length(self):
        extras = dict(simulate(program_spec("vsum", {"n": 200})).extras)
        # 200 elements over L=64 registers: 4 strips, each LOAD + VSUM
        # (+ single-element accumulate), plus the final scalar store.
        assert extras["memory_instructions"] == 5

    def test_gather_table_must_cover_indices(self):
        with pytest.raises(ConfigurationError, match="table_size"):
            simulate(program_spec("gather", {"n": 96, "table_size": 8}))

    def test_example_specs_run(self):
        from pathlib import Path

        from repro.scenarios import load_scenarios

        for name in (
            "scenario_vsum_program.json",
            "scenario_gather_scatter_program.json",
        ):
            for spec in load_scenarios(
                Path("examples", name).read_text()
            ):
                extras = dict(simulate(spec).extras)
                assert extras["numerically_correct"] is True
