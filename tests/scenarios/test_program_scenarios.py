"""Program scenarios: round trips, strip-mined tails, timeline
invariants, and the measured-vs-analytic chaining speedup contract."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.processor.chaining import CHAINING_MODEL_TOLERANCE, chaining_speedup
from repro.scenarios import (
    PROGRAM,
    TIMELINE_FIELDS,
    ComponentSpec,
    MemorySpec,
    ScenarioGrid,
    ScenarioSpec,
    build,
    example_params,
    kinds,
    simulate,
)


def program_spec(kind: str = "daxpy", drive=None, **params) -> ScenarioSpec:
    return ScenarioSpec(
        mapping=ComponentSpec.of("matched-xor", t=3, s=4),
        memory=MemorySpec(t=3, q=2),
        program=ComponentSpec.of(kind, **params),
        drive=drive or ComponentSpec.of("decoupled", chaining=True),
        name=f"test-{kind}",
    )


class TestRoundTrips:
    def test_every_program_kind_round_trips_and_simulates(self):
        for kind in kinds(PROGRAM):
            spec = program_spec(kind, **example_params(PROGRAM, kind))
            restored = ScenarioSpec.from_json(spec.to_json())
            assert restored == spec
            result = simulate(restored)
            assert result.timeline
            assert dict(result.extras)["total_cycles"] >= result.latency // 2
            # dict -> spec -> simulate -> dict is JSON-stable
            json.dumps(result.to_dict())

    def test_every_program_kind_builds_a_valid_program(self):
        for kind in kinds(PROGRAM):
            component = ComponentSpec.of(kind, **example_params(PROGRAM, kind))
            scenario_program = build(PROGRAM, component, register_length=64)
            scenario_program.program.validate(register_count=8)
            assert scenario_program.label

    def test_registered_kernels_are_numerically_checked(self):
        for kind in kinds(PROGRAM):
            if kind in ("instructions", "asm"):
                continue
            spec = program_spec(kind, **example_params(PROGRAM, kind))
            extras = dict(simulate(spec).extras)
            assert extras["numerically_correct"] is True, kind

    def test_program_and_workload_are_mutually_exclusive(self):
        with pytest.raises(ConfigurationError, match="not both"):
            ScenarioSpec(
                mapping=ComponentSpec.of("matched-xor", t=3, s=4),
                memory=MemorySpec(t=3),
                workload=ComponentSpec.of("strided", stride=4, length=64),
                program=ComponentSpec.of("daxpy", n=64),
            )

    def test_program_requires_decoupled_drive(self):
        spec = program_spec("daxpy", drive=ComponentSpec.of("planner"), n=64)
        with pytest.raises(ConfigurationError, match="decoupled"):
            simulate(spec)

    def test_unknown_program_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown program kind"):
            simulate(program_spec("warp-drive"))

    def test_timeline_fields_match_engine(self):
        from repro.processor.engine import TIMELINE_FIELDS as ENGINE_FIELDS

        assert TIMELINE_FIELDS == ENGINE_FIELDS


class TestStripMining:
    @pytest.mark.parametrize("n", [64, 96, 100, 160])
    def test_tails_stay_numerically_correct(self, n):
        spec = program_spec("daxpy", n=n, x_stride=4, y_stride=4)
        extras = dict(simulate(spec).extras)
        assert extras["numerically_correct"] is True
        strips = -(-n // 64)  # ceil: full strips plus at most one tail
        assert extras["instruction_count"] == 5 * strips

    def test_tail_instructions_carry_short_length(self):
        component = ComponentSpec.of("daxpy", n=96)
        scenario_program = build(PROGRAM, component, register_length=64)
        lengths = {
            instruction.length
            for instruction in scenario_program.program
        }
        assert lengths == {None, 32}  # full strips default, 32-element tail

    def test_register_length_comes_from_drive(self):
        spec = program_spec(
            "daxpy",
            drive=ComponentSpec.of(
                "decoupled", chaining=True, register_length=32
            ),
            n=96,
        )
        extras = dict(simulate(spec).extras)
        assert extras["register_length"] == 32
        assert extras["instruction_count"] == 5 * 3  # 96 = 3 strips of 32


class TestTimelineInvariants:
    def chained_and_decoupled(self, kind, **params):
        chained = simulate(program_spec(kind, **params))
        decoupled = simulate(
            program_spec(
                kind,
                drive=ComponentSpec.of("decoupled", chaining=False),
                **params,
            )
        )
        return chained, decoupled

    @pytest.mark.parametrize("kind", ["daxpy", "saxpy-chain"])
    def test_chained_never_completes_later(self, kind):
        chained, decoupled = self.chained_and_decoupled(kind, n=96)
        chained_totals = dict(chained.extras)["total_cycles"]
        decoupled_totals = dict(decoupled.extras)["total_cycles"]
        assert chained_totals <= decoupled_totals
        # per-instruction: completion cycles never move later under chaining
        end = TIMELINE_FIELDS.index("end_cycle")
        for row_c, row_d in zip(chained.timeline, decoupled.timeline):
            assert row_c[end] <= row_d[end]

    def test_equality_when_not_conflict_free(self):
        # x_stride 1 is outside the matched t=3, s=4 window: every load
        # conflicts, chaining falls back, and the timelines coincide.
        chained, decoupled = self.chained_and_decoupled(
            "saxpy-chain", n=64, x_stride=1, out_stride=1
        )
        extras = dict(chained.extras)
        assert extras["conflict_free_loads"] == 0
        assert extras["chained_instructions"] == 0
        assert chained.timeline == decoupled.timeline
        assert extras["chaining_speedup"] == 1.0
        # the analytic model's conflict-free premise fails: it must not
        # be reported as a comparand
        assert extras["chaining_model_applicable"] is False
        assert "chaining_speedup_model" not in extras
        assert "chaining_model_tolerance" not in extras


class TestChainingSpeedupContract:
    def test_daxpy_speedup_matches_analytic_model(self):
        extras = dict(
            simulate(
                program_spec("daxpy", n=96, x_stride=4, y_stride=4)
            ).extras
        )
        measured = extras["chaining_speedup"]
        model = extras["chaining_speedup_model"]
        assert extras["chaining_model_applicable"] is True
        assert measured > 1.0
        assert abs(measured - model) <= CHAINING_MODEL_TOLERANCE * model
        assert extras["chaining_model_tolerance"] == CHAINING_MODEL_TOLERANCE

    def test_pair_program_matches_section_5f_formula(self):
        # The canonical LOAD -> OP pair, written as an inline program:
        # its whole-program speedup is exactly chaining_speedup(L, T, n).
        lines = [
            ".fill base=0, stride=4, count=64, value=1.5",
            "vload v1, base=0, stride=4",
            "vadd v2, v1, v1",
        ]
        spec = program_spec("instructions", lines=lines)
        extras = dict(simulate(spec).extras)
        assert extras["chaining_speedup"] == pytest.approx(
            chaining_speedup(64, 8, 4)
        )
        assert extras["chaining_speedup_model"] == pytest.approx(
            chaining_speedup(64, 8, 4)
        )


class TestInlinePrograms:
    def test_instructions_kind_preloads_directives(self):
        lines = [
            ".init base=0, stride=2, values=1;2;3;4",
            "vload v1, base=0, stride=2, length=4",
            "vscale v2, v1, scalar=10, length=4",
            "vstore v2, base=1000, stride=1, length=4",
        ]
        spec = program_spec(
            "instructions",
            drive=ComponentSpec.of("decoupled"),
            lines=lines,
        )
        result = simulate(spec)
        extras = dict(result.extras)
        assert extras["instruction_count"] == 3
        # raw sources have no expected outputs: no correctness verdict
        assert "numerically_correct" not in extras

    def test_asm_kind_accepts_text(self):
        text = (
            ".fill base=0, stride=4, count=8, value=2\n"
            "vload v1, base=0, stride=4, length=8\n"
            "vmul v2, v1, v1, length=8\n"
        )
        spec = program_spec(
            "asm", drive=ComponentSpec.of("decoupled"), text=text
        )
        assert dict(simulate(spec).extras)["instruction_count"] == 2

    def test_bad_inline_program_is_a_located_clean_error(self):
        from repro.errors import ProgramError

        spec = program_spec(
            "instructions",
            drive=ComponentSpec.of("decoupled"),
            lines=["vload v1, stride=4, length=8"],
        )
        with pytest.raises(ProgramError, match="line 1"):
            simulate(spec)


class TestProgramGrids:
    def test_grid_sweeps_program_params(self):
        grid = ScenarioGrid.of(
            program_spec("saxpy-chain", n=64),
            program__params__n=(64, 96),
            drive__params__chaining=(False, True),
        )
        specs = grid.expand()
        assert len(specs) == 4
        results = [simulate(spec) for spec in specs]
        assert all(
            dict(result.extras)["numerically_correct"] for result in results
        )

    def test_grid_round_trips_through_json(self):
        grid = ScenarioGrid.of(
            program_spec("daxpy", n=64), program__params__n=(64, 128)
        )
        assert ScenarioGrid.from_json(grid.to_json()) == grid


class TestLabIntegration:
    def test_program_specs_cache_per_design_point(self, tmp_path):
        from repro.lab import ArtifactStore, run_jobs, scenario_job

        store = ArtifactStore(tmp_path / "lab")
        specs = [
            program_spec("saxpy-chain", n=64),
            program_spec("saxpy-chain", n=96),
        ]
        jobs = [scenario_job(spec) for spec in specs]
        assert jobs[0].job_id != jobs[1].job_id
        assert jobs[0].config_hash() != jobs[1].config_hash()

        report = run_jobs(jobs, store=store, workers=1)
        assert report.all_passed
        assert report.executed == 2
        rerun = run_jobs(jobs, store=store, workers=1)
        assert rerun.cache_hits == 2

    def test_correctness_verdict_becomes_the_job_check(self, tmp_path):
        from repro.lab import ArtifactStore, run_jobs, scenario_job

        store = ArtifactStore(tmp_path / "lab")
        report = run_jobs(
            [scenario_job(program_spec("daxpy", n=64))],
            store=store,
            workers=1,
        )
        record = report.outcomes[0].record
        assert record["checks"]
        assert record["checks"][0]["claim"].startswith("program outputs")
        assert record["all_passed"] is True
