"""Round-trip and validation tests for scenario specs.

The headline guarantee: every registered component kind — with its
registered example parameters — survives
``ScenarioSpec.from_dict(spec.to_dict()) == spec`` and the JSON
equivalent, and every malformed spec fails with a
:class:`~repro.errors.ConfigurationError` naming the problem.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.scenarios import (
    CATEGORIES,
    DRIVE,
    MAPPING,
    WORKLOAD,
    ComponentSpec,
    MemorySpec,
    ScenarioSpec,
    example_params,
    kinds,
)


def example_component(category: str, kind: str) -> ComponentSpec:
    return ComponentSpec.of(kind, **example_params(category, kind))


def base_spec(**overrides) -> ScenarioSpec:
    fields = dict(
        mapping=ComponentSpec.of("matched-xor", t=3, s=4),
        memory=MemorySpec(t=3),
        workload=ComponentSpec.of("strided", base=16, stride=12, length=128),
    )
    fields.update(overrides)
    return ScenarioSpec(**fields)


class TestComponentRoundTrips:
    @pytest.mark.parametrize("category", CATEGORIES)
    def test_every_registered_kind_round_trips(self, category):
        for kind in kinds(category):
            component = example_component(category, kind)
            assert ComponentSpec.from_dict(component.to_dict()) == component

    def test_every_mapping_kind_round_trips_inside_a_scenario(self):
        for kind in kinds(MAPPING):
            spec = base_spec(mapping=example_component(MAPPING, kind))
            assert ScenarioSpec.from_dict(spec.to_dict()) == spec
            assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_every_workload_kind_round_trips_inside_a_scenario(self):
        for kind in kinds(WORKLOAD):
            spec = base_spec(workload=example_component(WORKLOAD, kind))
            assert ScenarioSpec.from_dict(spec.to_dict()) == spec
            assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_every_drive_kind_round_trips_inside_a_scenario(self):
        for kind in kinds(DRIVE):
            spec = base_spec(drive=example_component(DRIVE, kind))
            assert ScenarioSpec.from_dict(spec.to_dict()) == spec
            assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_param_order_does_not_matter(self):
        assert ComponentSpec.of("matched-xor", t=3, s=4) == ComponentSpec.of(
            "matched-xor", s=4, t=3
        )

    def test_list_params_round_trip_as_tuples(self):
        component = ComponentSpec.of("gather", indices=[3, 1, 4], base=0)
        restored = ComponentSpec.from_dict(
            json.loads(json.dumps(component.to_dict()))
        )
        assert restored == component
        assert restored.param_dict()["indices"] == (3, 1, 4)

    def test_canonical_json_is_deterministic(self):
        spec = base_spec(name="determinism")
        assert spec.to_json() == ScenarioSpec.from_json(spec.to_json()).to_json()


class TestSpecValidation:
    def test_unknown_scenario_key_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown scenario spec"):
            ScenarioSpec.from_dict(
                {
                    "mapping": {"kind": "matched-xor", "params": {"t": 3, "s": 4}},
                    "memory": {"t": 3},
                    "wrkload": {"kind": "strided", "params": {}},
                }
            )

    def test_missing_mapping_rejected(self):
        with pytest.raises(ConfigurationError, match="'mapping'"):
            ScenarioSpec.from_dict({"memory": {"t": 3}})

    def test_unknown_memory_key_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown memory spec"):
            MemorySpec.from_dict({"t": 3, "modules": 8})

    def test_non_scalar_param_rejected(self):
        with pytest.raises(ConfigurationError, match="scalars"):
            ComponentSpec.of("strided", stride={"nested": 1})

    def test_nested_list_param_rejected(self):
        with pytest.raises(ConfigurationError, match="scalars"):
            ComponentSpec.of("gather", indices=[[1, 2], [3]])

    def test_bad_memory_geometry_rejected(self):
        with pytest.raises(ConfigurationError, match="buffer depths"):
            MemorySpec(t=3, q=0)
        with pytest.raises(ConfigurationError, match="t must be >= 0"):
            MemorySpec(t=-1)

    def test_invalid_json_is_configuration_error(self):
        with pytest.raises(ConfigurationError, match="invalid scenario JSON"):
            ScenarioSpec.from_json("{not json")

    def test_empty_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="non-empty"):
            ComponentSpec("", ())


class TestReplace:
    def test_replace_memory_field(self):
        spec = base_spec()
        assert spec.replace("memory.t", 4).memory.t == 4
        assert spec.memory.t == 3  # original untouched

    def test_replace_mapping_param(self):
        spec = base_spec()
        updated = spec.replace("mapping.params.s", 5)
        assert updated.mapping.param_dict()["s"] == 5

    def test_replace_can_add_new_param(self):
        spec = base_spec()
        updated = spec.replace("workload.params.base", 99)
        assert updated.workload.param_dict()["base"] == 99

    def test_replace_unknown_path_rejected(self):
        with pytest.raises(ConfigurationError, match="no field at path"):
            base_spec().replace("memory.modules", 8)
        with pytest.raises(ConfigurationError, match="no field at path"):
            base_spec().replace("nowhere.at.all", 1)

    def test_distinct_params_are_distinct_specs(self):
        spec = base_spec()
        assert spec.replace("memory.q", 2) != spec
        assert spec.replace("workload.params.stride", 13) != spec
        assert spec.to_json() != spec.replace("memory.q", 2).to_json()
