"""Grid tests: deterministic expansion, JSON round-trip, sweep bridge."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.scenarios import (
    ComponentSpec,
    MemorySpec,
    ScenarioGrid,
    ScenarioSpec,
    load_scenarios,
    simulate,
)


def base_spec() -> ScenarioSpec:
    return ScenarioSpec(
        mapping=ComponentSpec.of("matched-xor", t=3, s=4),
        memory=MemorySpec(t=3),
        workload=ComponentSpec.of("strided", base=16, stride=12, length=128),
        name="grid-base",
    )


class TestExpansion:
    def test_product_order_is_deterministic(self):
        grid = ScenarioGrid.of(
            base_spec(),
            memory__q=(1, 2),
            workload__params__stride=(3, 12),
        )
        assert grid.size == 4
        points = [
            (spec.memory.q, spec.workload.param_dict()["stride"])
            for spec in grid.expand()
        ]
        assert points == [(1, 3), (1, 12), (2, 3), (2, 12)]

    def test_point_names_record_their_coordinates(self):
        grid = ScenarioGrid.of(base_spec(), memory__t=(2, 3))
        names = [spec.name for spec in grid.expand()]
        assert names == ["grid-base[t=2]", "grid-base[t=3]"]

    def test_axisless_grid_is_the_base(self):
        grid = ScenarioGrid(base_spec(), ())
        assert grid.expand() == [base_spec()]

    def test_every_point_simulates(self):
        grid = ScenarioGrid.of(base_spec(), workload__params__stride=(1, 12, 48))
        for spec in grid.expand():
            assert simulate(spec).conflict_free


class TestGridValidation:
    def test_empty_axis_rejected(self):
        with pytest.raises(ConfigurationError, match="no values"):
            ScenarioGrid(base_spec(), (("memory.q", ()),))

    def test_duplicate_axis_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            ScenarioGrid(
                base_spec(), (("memory.q", (1,)), ("memory.q", (2,)))
            )

    def test_bad_axis_path_rejected_up_front(self):
        with pytest.raises(ConfigurationError, match="no field at path"):
            ScenarioGrid(base_spec(), (("memory.banks", (1, 2)),))


class TestGridRoundTrip:
    def test_dict_round_trip(self):
        grid = ScenarioGrid.of(
            base_spec(), memory__q=(1, 2), mapping__params__s=(4, 5)
        )
        assert ScenarioGrid.from_dict(grid.to_dict()) == grid
        assert ScenarioGrid.from_json(grid.to_json()) == grid

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown scenario grid"):
            ScenarioGrid.from_dict({"base": base_spec().to_dict(), "axis": {}})

    def test_non_list_axis_rejected(self):
        with pytest.raises(ConfigurationError, match="must list"):
            ScenarioGrid.from_dict(
                {"base": base_spec().to_dict(), "axes": {"memory.q": 2}}
            )


class TestLoadScenarios:
    def test_single_spec_document(self):
        specs = load_scenarios(base_spec().to_json())
        assert specs == [base_spec()]

    def test_grid_document_expands(self):
        grid = ScenarioGrid.of(base_spec(), memory__q=(1, 2, 4))
        assert load_scenarios(grid.to_json()) == grid.expand()

    def test_list_document_mixes_specs_and_grids(self):
        import json

        grid = ScenarioGrid.of(base_spec(), memory__q=(1, 2))
        text = json.dumps([base_spec().to_dict(), grid.to_dict()])
        specs = load_scenarios(text)
        assert len(specs) == 3

    def test_invalid_json_rejected(self):
        with pytest.raises(ConfigurationError, match="invalid scenario JSON"):
            load_scenarios("[{]")


class TestSweepBridge:
    def test_standard_sweeps_materialise_as_scenarios(self):
        from repro.analysis.sweeps import STANDARD_SWEEPS

        for sweep in STANDARD_SWEEPS:
            specs = sweep.scenario_specs()
            assert len(specs) == len(sweep.design_rows())
            for spec, row in zip(specs, sweep.design_rows()):
                assert spec.memory.t == row.t
                assert spec.workload.param_dict()["length"] == row.vector_length

    def test_bridged_design_points_are_conflict_free(self):
        from repro.analysis.sweeps import SweepSpec

        sweep = SweepSpec(axis="lambda", fixed=3, start=6, stop=9)
        for spec in sweep.scenario_specs():
            result = simulate(spec)
            assert result.conflict_free
            assert result.latency == result.minimum_latency
