"""Design-point diffing: direction-aware regression classification."""

from __future__ import annotations

from repro.scenarios import (
    ComponentSpec,
    MemorySpec,
    ScenarioSpec,
    diff_results,
    render_scenario_diff,
    simulate,
)


def result_dict(**overrides) -> dict:
    base = {
        "name": "point",
        "drive": "planner",
        "schemes": ["conflict_free"],
        "access_count": 1,
        "element_count": 128,
        "latency": 137,
        "minimum_latency": 137,
        "excess_latency": 0,
        "conflict_free": True,
        "issue_stalls": 0,
        "wait_count": 0,
        "cycles_per_element": 137 / 128,
        "efficiency": 1.0,
        "service_ratio": 8,
        "module_count": 8,
        "module_utilisation": 0.5,
        "module_busy_cycles": [17] * 8,
        "extras": {},
        "timeline": [],
    }
    base.update(overrides)
    return base


class TestClassification:
    def test_identical_records_have_no_entries(self):
        diff = diff_results(result_dict(), result_dict())
        assert not diff.entries
        assert not diff.has_regressions
        assert diff.identical == diff.compared

    def test_latency_increase_is_a_regression(self):
        diff = diff_results(result_dict(), result_dict(latency=150))
        assert [e.metric for e in diff.regressions] == ["latency"]

    def test_latency_decrease_is_an_improvement(self):
        diff = diff_results(result_dict(), result_dict(latency=120))
        assert not diff.has_regressions
        assert [e.metric for e in diff.improvements] == ["latency"]

    def test_lost_conflict_freedom_is_a_regression(self):
        diff = diff_results(result_dict(), result_dict(conflict_free=False))
        assert any(e.metric == "conflict_free" for e in diff.regressions)

    def test_efficiency_drop_is_a_regression(self):
        diff = diff_results(result_dict(), result_dict(efficiency=0.8))
        assert any(e.metric == "efficiency" for e in diff.regressions)

    def test_lost_correctness_is_a_regression(self):
        diff = diff_results(
            result_dict(extras={"numerically_correct": True}),
            result_dict(extras={"numerically_correct": False}),
        )
        assert any(
            e.metric == "extra:numerically_correct" for e in diff.regressions
        )

    def test_total_cycles_increase_is_a_regression(self):
        diff = diff_results(
            result_dict(extras={"total_cycles": 200}),
            result_dict(extras={"total_cycles": 260}),
        )
        assert any(e.metric == "extra:total_cycles" for e in diff.regressions)

    def test_one_sided_metric_is_a_change(self):
        diff = diff_results(
            result_dict(), result_dict(extras={"total_cycles": 10})
        )
        assert not diff.has_regressions
        assert any(e.metric == "extra:total_cycles" for e in diff.changes)

    def test_names_may_differ(self):
        diff = diff_results(result_dict(name="a"), result_dict(name="b"))
        assert not diff.entries

    def test_timeline_difference_is_a_change(self):
        diff = diff_results(
            result_dict(timeline=[{"position": 0}]),
            result_dict(timeline=[{"position": 0}, {"position": 1}]),
        )
        assert not diff.has_regressions
        assert any(e.metric == "timeline" for e in diff.changes)


class TestRendering:
    def test_render_lists_regressions_first(self):
        diff = diff_results(
            result_dict(), result_dict(latency=150, efficiency=0.9)
        )
        text = render_scenario_diff(diff)
        assert "[REGRESSION] latency: 137 -> 150 (+13)" in text
        assert text.index("REGRESSION") < text.index("regression(s)")

    def test_render_no_regressions(self):
        text = render_scenario_diff(diff_results(result_dict(), result_dict()))
        assert "metric-identical" in text


class TestEndToEnd:
    def test_ordered_mode_regresses_against_auto(self):
        base = ScenarioSpec(
            mapping=ComponentSpec.of("matched-xor", t=3, s=4),
            memory=MemorySpec(t=3),
            workload=ComponentSpec.of("strided", base=16, stride=12, length=128),
        )
        ordered = base.replace("drive.params.mode", "ordered")
        diff = diff_results(
            simulate(base).to_dict(), simulate(ordered).to_dict()
        )
        assert diff.has_regressions
        assert any(e.metric == "latency" for e in diff.regressions)
        assert any(e.metric == "conflict_free" for e in diff.regressions)
