"""Facade tests: spec-built machines equal hand-wired ones; simulate()
normalises the same metrics every consumer used to extract by hand."""

from __future__ import annotations

import pytest

from repro.core.planner import AccessPlanner
from repro.core.vector import VectorAccess
from repro.errors import ConfigurationError
from repro.memory.config import MemoryConfig
from repro.memory.system import MemorySystem
from repro.scenarios import (
    DRIVE,
    WORKLOAD,
    ComponentSpec,
    MemorySpec,
    ScenarioSpec,
    build_machine,
    build_workload,
    example_params,
    kinds,
    resolve_mapping,
    simulate,
)


def matched_spec(**overrides) -> ScenarioSpec:
    fields = dict(
        mapping=ComponentSpec.of("matched-xor", t=3, s=4),
        memory=MemorySpec(t=3),
        workload=ComponentSpec.of("strided", base=16, stride=12, length=128),
    )
    fields.update(overrides)
    return ScenarioSpec(**fields)


class TestBuildMachine:
    def test_machine_matches_hand_wiring(self):
        config, planner, system = build_machine(matched_spec())
        hand = MemoryConfig.matched(t=3, s=4)
        assert config.mapping.describe() == hand.mapping.describe()
        assert config.service_ratio == hand.service_ratio
        assert config.module_count == hand.module_count
        vector = VectorAccess(16, 12, 128)
        hand_run = MemorySystem(hand).run_plan(
            AccessPlanner(hand.mapping, 3).plan(vector)
        )
        spec_run = system.run_plan(planner.plan(vector))
        assert spec_run.latency == hand_run.latency
        assert spec_run.conflict_free == hand_run.conflict_free

    def test_buffer_depths_respected(self):
        config, _, _ = build_machine(matched_spec(memory=MemorySpec(t=3, q=2, qp=4)))
        assert config.input_capacity == 2
        assert config.output_capacity == 4

    def test_address_bits_flow_to_mapping(self):
        spec = matched_spec(memory=MemorySpec(t=3, address_bits=20))
        config, _, _ = build_machine(spec)
        assert config.mapping.address_bits == 20

    def test_infeasible_geometry_raises(self):
        # m=3 modules cannot hide T=2**4: feasibility errors surface as
        # ConfigurationError from the underlying constructors.
        spec = matched_spec(memory=MemorySpec(t=4))
        with pytest.raises(ConfigurationError):
            build_machine(spec)

    def test_every_mapping_kind_builds(self):
        from repro.scenarios import MAPPING

        for kind in kinds(MAPPING):
            spec = matched_spec(
                mapping=ComponentSpec.of(kind, **example_params(MAPPING, kind))
            )
            mapping = resolve_mapping(spec)
            assert mapping.module_count >= 1


class TestWorkloads:
    def test_every_workload_kind_builds_and_simulates(self):
        for kind in kinds(WORKLOAD):
            spec = matched_spec(
                workload=ComponentSpec.of(kind, **example_params(WORKLOAD, kind))
            )
            workload = build_workload(spec)
            assert workload.element_count >= 1
            result = simulate(spec)
            assert result.latency >= result.element_count
            assert result.element_count == workload.element_count

    def test_missing_workload_rejected(self):
        with pytest.raises(ConfigurationError, match="declares no workload"):
            simulate(matched_spec(workload=None))


class TestDrives:
    def test_planner_auto_reaches_minimum(self):
        result = simulate(matched_spec())
        assert result.conflict_free
        assert result.latency == result.minimum_latency == 8 + 128 + 1
        assert result.issue_stalls == 0
        assert result.efficiency == 1.0

    def test_ordered_mode_is_slower_for_conflicting_family(self):
        ordered = simulate(
            matched_spec(drive=ComponentSpec.of("planner", mode="ordered"))
        )
        assert not ordered.conflict_free
        assert ordered.latency > ordered.minimum_latency

    def test_figure6_engine_matches_planner(self):
        auto = simulate(matched_spec())
        engine = simulate(matched_spec(drive=ComponentSpec.of("figure6")))
        assert engine.latency == auto.latency
        assert engine.conflict_free
        extras = dict(engine.extras)
        assert extras["latch_peak_occupancy"] <= extras["latch_capacity"]

    def test_decoupled_drive_reports_machine_extras(self):
        result = simulate(
            matched_spec(drive=ComponentSpec.of("decoupled", chaining=True))
        )
        extras = dict(result.extras)
        assert extras["chained_instructions"] == 1
        assert extras["total_cycles"] >= result.latency

    def test_figure6_rejects_non_strided_workload(self):
        spec = matched_spec(
            workload=ComponentSpec.of("bit-reversal", bits=5),
            drive=ComponentSpec.of("figure6"),
        )
        with pytest.raises(ConfigurationError, match="not a single strided"):
            simulate(spec)

    def test_decoupled_register_shorter_than_vector_rejected(self):
        spec = matched_spec(
            drive=ComponentSpec.of("decoupled", register_length=64)
        )
        with pytest.raises(ConfigurationError, match="shorter than"):
            simulate(spec)

    def test_bad_planner_mode_rejected(self):
        with pytest.raises(ConfigurationError, match="planner mode"):
            simulate(
                matched_spec(drive=ComponentSpec.of("planner", mode="chaotic"))
            )

    def test_unknown_drive_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown drive kind"):
            simulate(matched_spec(drive=ComponentSpec.of("warp")))

    def test_every_drive_kind_simulates(self):
        for kind in kinds(DRIVE):
            spec = matched_spec(
                drive=ComponentSpec.of(kind, **example_params(DRIVE, kind))
            )
            assert simulate(spec).latency > 0


class TestDynamicMapping:
    def test_dynamic_resolves_against_stride(self):
        spec = matched_spec(
            mapping=ComponentSpec.of("dynamic", m=3),
            workload=ComponentSpec.of("strided", stride=8, length=64),
            drive=ComponentSpec.of("planner", mode="ordered"),
        )
        result = simulate(spec)
        # The dynamic baseline gives conflict-free *ordered* access to
        # its chosen stride — that is its entire pitch.
        assert result.conflict_free

    def test_dynamic_without_strided_workload_rejected(self):
        spec = matched_spec(
            mapping=ComponentSpec.of("dynamic", m=3),
            workload=ComponentSpec.of("bit-reversal", bits=5),
        )
        with pytest.raises(ConfigurationError, match="not a single strided"):
            simulate(spec)

    def test_dynamic_without_any_workload_rejected(self):
        spec = matched_spec(
            mapping=ComponentSpec.of("dynamic", m=3), workload=None
        )
        with pytest.raises(ConfigurationError, match="dynamic mapping"):
            build_machine(spec)


class TestKernelAggregation:
    def test_multi_access_workload_sums_metrics(self):
        spec = matched_spec(
            workload=ComponentSpec.of("fft-stage", n=256, stage=3)
        )
        result = simulate(spec)
        assert result.access_count == 16
        assert result.element_count == 256
        assert result.conflict_free  # stride 16 = family 4 is in-window
        assert result.minimum_latency == 16 * (8 + 16 + 1)

    def test_metric_rows_are_json_safe(self):
        import json

        result = simulate(matched_spec())
        json.dumps(result.to_dict())
        json.dumps(result.metric_rows())


class TestResultNormalisation:
    def test_normalised_metrics_match_raw_simulation(self):
        spec = matched_spec()
        _, planner, system = build_machine(spec)
        raw = system.run_plan(planner.plan(VectorAccess(16, 12, 128)))
        result = simulate(spec)
        assert result.latency == raw.latency
        assert result.issue_stalls == raw.issue_stall_cycles
        assert result.wait_count == raw.wait_count
        assert result.module_busy_cycles == raw.module_busy_cycles
        assert result.cycles_per_element == raw.cycles_per_element
