"""Brute-force verification of the paper's theorems across geometries.

These tests sweep (t, s, lambda) grids beyond the paper's running
examples and check, for random odd factors and bases, that:

* Theorem 1 — the matched window ``s-N <= x <= s`` is exactly the set of
  families the planner serves conflict-free at minimum latency;
* Theorem 3 — both unmatched windows behave likewise;
* the static conflict-freedom predicate and the cycle-accurate simulator
  never disagree.
"""

from __future__ import annotations

import random

import pytest

from repro.core.planner import AccessPlanner
from repro.core.vector import VectorAccess
from repro.core.windows import matched_window, unmatched_windows
from repro.mappings.linear import MatchedXorMapping
from repro.mappings.section import SectionXorMapping
from repro.memory.config import MemoryConfig
from repro.memory.system import MemorySystem

RNG = random.Random(20260613)


def random_cases(count: int, max_sigma: int = 31) -> list[tuple[int, int]]:
    """Random (sigma, base) pairs, sigma odd and possibly negative."""
    cases = []
    for _ in range(count):
        sigma = RNG.randrange(1, max_sigma + 1, 2)
        if RNG.random() < 0.3:
            sigma = -sigma
        base = RNG.randrange(0, 1 << 24)
        cases.append((sigma, base))
    return cases


@pytest.mark.parametrize(
    "t,s,lam",
    [
        (1, 1, 3),
        (1, 3, 5),
        (2, 2, 5),
        (2, 4, 6),
        (3, 3, 6),
        (3, 4, 7),
        (3, 6, 8),
        (4, 4, 8),
    ],
)
def test_theorem1_window_exact(t, s, lam):
    """The conflict-free set equals the Theorem-1 window, nothing more."""
    mapping = MatchedXorMapping(t, s)
    planner = AccessPlanner(mapping, t)
    system = MemorySystem(MemoryConfig(mapping, t))
    window = matched_window(lam, t, s)
    length = 1 << lam
    minimum = (1 << t) + length + 1

    for family in range(s + 3):
        for sigma, base in random_cases(3):
            vector = VectorAccess(base, sigma * (1 << family), length)
            plan = planner.plan(vector, mode="auto")
            result = system.run_plan(plan)
            expected = window.contains(family)
            assert plan.conflict_free == expected, (t, s, lam, family, sigma, base)
            assert result.conflict_free == expected
            if expected:
                assert result.latency == minimum


@pytest.mark.parametrize(
    "t,s,y,lam",
    [
        (1, 2, 6, 4),
        (2, 3, 7, 5),
        (2, 4, 9, 6),
        (3, 4, 9, 7),
        (3, 5, 11, 8),
    ],
)
def test_theorem3_windows_exact(t, s, y, lam):
    """Both unmatched windows are conflict-free; the complement is not."""
    mapping = SectionXorMapping(t, s, y)
    planner = AccessPlanner(mapping, t)
    system = MemorySystem(MemoryConfig(mapping, t))
    low, high = unmatched_windows(lam, t, s, y)
    length = 1 << lam
    minimum = (1 << t) + length + 1

    for family in range(y + 2):
        expected = low.contains(family) or high.contains(family)
        for sigma, base in random_cases(3):
            vector = VectorAccess(base, sigma * (1 << family), length)
            plan = planner.plan(vector, mode="auto")
            result = system.run_plan(plan)
            assert plan.conflict_free == expected, (
                t, s, y, lam, family, sigma, base,
            )
            assert result.conflict_free == expected
            if expected:
                assert result.latency == minimum


def test_short_registers_clip_the_window():
    """Theorem 1 with lambda - t < s: only the upper part of the window."""
    t, s, lam = 3, 6, 7  # N = min(4, 6) = 4 -> window [2, 6]
    mapping = MatchedXorMapping(t, s)
    planner = AccessPlanner(mapping, t)
    length = 1 << lam
    verdicts = {}
    for family in range(s + 2):
        plans = [
            planner.plan(
                VectorAccess(base, 3 * (1 << family), length), mode="auto"
            ).conflict_free
            for base in (0, 17, 4242)
        ]
        verdicts[family] = all(plans)
    assert verdicts == {
        0: False, 1: False, 2: True, 3: True, 4: True, 5: True, 6: True,
        7: False,
    }


def test_static_predicate_and_simulator_always_agree():
    """Cross-validation sweep: the Section 2 predicate == the machine."""
    mapping = MatchedXorMapping(3, 4)
    planner = AccessPlanner(mapping, 3)
    system = MemorySystem(MemoryConfig(mapping, 3))
    for mode in ("ordered", "subsequence", "conflict_free", "auto"):
        for family in range(5):
            for sigma, base in random_cases(2):
                vector = VectorAccess(base, sigma * (1 << family), 64)
                try:
                    plan = planner.plan(vector, mode=mode)
                except Exception:
                    continue
                result = system.run_plan(plan)
                assert result.conflict_free == plan.conflict_free, (
                    mode, family, sigma, base,
                )


def test_negative_strides_inside_window():
    """The algebra is sign-agnostic: negative strides behave identically."""
    planner = AccessPlanner(MatchedXorMapping(3, 4), 3)
    system = MemorySystem(MemoryConfig.matched(t=3, s=4))
    for family in range(5):
        vector = VectorAccess(1 << 20, -3 * (1 << family), 128)
        plan = planner.plan(vector, mode="auto")
        result = system.run_plan(plan)
        assert result.conflict_free
        assert result.latency == 137


def test_t_matched_is_necessary_for_conflict_free():
    """Section 2: no ordering can fix a non-T-matched vector.

    For an out-of-window family, even the best-effort orderings stay
    conflicted because too few modules hold the data.
    """
    mapping = MatchedXorMapping(3, 4)
    planner = AccessPlanner(mapping, 3)
    vector = VectorAccess(0, 1 << 6, 128)  # family 6 > s: 2 modules only
    assert not planner.vector_t_matched(vector)
    plan = planner.plan(vector, mode="ordered")
    assert not plan.conflict_free


def test_any_initial_address_theorem1():
    """Dense sweep over bases for one stride: CF must hold for all A1."""
    planner = AccessPlanner(MatchedXorMapping(3, 4), 3)
    for base in range(0, 256, 3):
        plan = planner.plan(VectorAccess(base, 12, 128), mode="auto")
        assert plan.conflict_free, base
