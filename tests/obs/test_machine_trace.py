"""Machine- and scenario-level tracing: spans must match the timeline.

The acceptance bar for the program path: every per-instruction timeline
row (the ``timeline`` extra scenario results already carry) has exactly
one ``machine/*`` span with the same position, unit and cycle window —
the trace is the timeline, just renderable in Perfetto.  And tracing a
scenario must never change its result.
"""

from __future__ import annotations

import pytest

from repro.obs import Tracer
from repro.scenarios import ScenarioSpec, simulate

DAXPY = {
    "name": "traced-daxpy",
    "mapping": {"kind": "matched-xor", "params": {"t": 3, "s": 4}},
    "memory": {"t": 3, "q": 2},
    "program": {
        "kind": "daxpy",
        "params": {"n": 96, "alpha": 2.0, "x_stride": 4, "y_stride": 4},
    },
    "drive": {"kind": "decoupled", "params": {"chaining": True}},
}

STRIDED = {
    "name": "traced-strided",
    "mapping": {"kind": "matched-xor", "params": {"t": 3, "s": 4}},
    "memory": {"t": 3},
    "workload": {
        "kind": "strided",
        "params": {"base": 16, "stride": 12, "length": 64},
    },
}


@pytest.fixture(scope="module")
def traced_program():
    tracer = Tracer()
    result = simulate(ScenarioSpec.from_dict(DAXPY), tracer=tracer)
    return result, tracer


class TestProgramTrace:
    def test_result_is_tracer_invariant(self, traced_program):
        result, _ = traced_program
        plain = simulate(ScenarioSpec.from_dict(DAXPY))
        assert result.to_dict() == plain.to_dict()

    def test_machine_spans_match_timeline_rows(self, traced_program):
        result, tracer = traced_program
        spans = tracer.spans("machine/")
        timeline = result.timeline
        assert timeline, "program scenario carries no timeline"
        assert len(spans) == len(timeline)
        by_name = {
            (event[1], event[2]): event for event in spans
        }
        for row in timeline:
            position, mnemonic, unit, start, end = row[:5]
            track = (
                "machine/memory" if unit == "memory" else "machine/execute"
            )
            event = by_name[(track, f"{mnemonic} @{position}")]
            assert event[3] == start
            assert event[4] == end
            assert event[5]["position"] == position

    def test_memory_spans_carry_port_and_stream(self, traced_program):
        result, tracer = traced_program
        memory_rows = {
            row[0]: row for row in result.timeline if row[2] == "memory"
        }
        for event in tracer.spans("machine/memory"):
            row = memory_rows[event[5]["position"]]
            assert event[5]["port"] == row[8]
            assert event[5]["stream"] == row[9]

    def test_kernel_tracks_land_at_absolute_program_cycles(
        self, traced_program
    ):
        result, tracer = traced_program
        module_spans = tracer.spans("memory/module ")
        assert module_spans, "program trace has no kernel-level spans"
        # Batches run the kernel from relative cycle 1 and are shifted
        # into program time, so no kernel event may outrun the program.
        program_end = max(row[4] for row in result.timeline)
        assert max(event[4] for event in module_spans) <= program_end
        machine_memory = tracer.spans("machine/memory")
        first_access = min(event[3] for event in machine_memory)
        assert min(event[3] for event in module_spans) >= first_access


class TestWorkloadTrace:
    def test_workload_scenario_traces_and_is_invariant(self):
        tracer = Tracer()
        result = simulate(ScenarioSpec.from_dict(STRIDED), tracer=tracer)
        plain = simulate(ScenarioSpec.from_dict(STRIDED))
        assert result.to_dict() == plain.to_dict()
        assert tracer.spans("streams/")
        assert tracer.spans("memory/module ")
        spans = tracer.spans("streams/")
        assert max(event[4] for event in spans) == result.latency
