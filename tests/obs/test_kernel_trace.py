"""Kernel trace emission: zero-cost when off, cycle-exact when on.

Two properties anchor the tracing design:

1. **Results are tracer-invariant.**  The kernel derives events after
   the cycle loop from the timing records it already materialises, so a
   traced run must equal the untraced run field for field.
2. **Events are the records.**  Every span/instant must agree with the
   :class:`~repro.memory.kernel.StreamRun` it was derived from — same
   first-issue/last-delivery window, same per-module occupancy, same
   per-request service interval.
"""

from __future__ import annotations

import time

import pytest

from repro.core.planner import AccessPlanner
from repro.core.vector import VectorAccess
from repro.memory.config import MemoryConfig
from repro.memory.kernel import KernelStream, MemoryKernel
from repro.obs import NULL_TRACER, Tracer, chrome_trace_events

CONFIG = MemoryConfig.matched(t=3, s=4, input_capacity=2)
PLANNER = AccessPlanner(CONFIG.mapping, 3)


def two_streams():
    return [
        KernelStream.of(
            "a", PLANNER.plan(VectorAccess(0, 12, 64)).request_stream()
        ),
        KernelStream.of(
            "b", PLANNER.plan(VectorAccess(1, 12, 64)).request_stream()
        ),
    ]


def traced_run(streams=None):
    tracer = Tracer()
    run = MemoryKernel(CONFIG, tracer=tracer).run(streams or two_streams())
    return run, tracer


class TestTracerInvariance:
    def test_traced_equals_untraced(self):
        plain = MemoryKernel(CONFIG).run(two_streams())
        traced, _ = traced_run()
        assert traced == plain

    def test_default_tracer_is_the_null_singleton(self):
        kernel = MemoryKernel(CONFIG)
        assert kernel.tracer is NULL_TRACER
        assert MemoryKernel(CONFIG, tracer=None).tracer is NULL_TRACER

    def test_disabled_tracing_never_derives_events(self, monkeypatch):
        # The fast path is structural: _emit_trace must not even be
        # reached when the tracer is disabled.
        def boom(self, run):
            raise AssertionError("_emit_trace called with tracing disabled")

        monkeypatch.setattr(MemoryKernel, "_emit_trace", boom)
        MemoryKernel(CONFIG).run(two_streams())
        with pytest.raises(AssertionError):
            MemoryKernel(CONFIG, tracer=Tracer()).run(two_streams())

    def test_disabled_tracing_within_noise_of_untraced(self):
        # tracer=None resolves to the same NULL_TRACER the no-argument
        # construction uses, so the two paths are the same code; the
        # timing assertion (generous bound, best of several) guards
        # against someone reintroducing per-cycle tracer work later.
        streams = two_streams()

        def best_of(kernel, repeats=5):
            samples = []
            for _ in range(repeats):
                begin = time.perf_counter()
                kernel.run(streams)
                samples.append(time.perf_counter() - begin)
            return min(samples)

        untraced = best_of(MemoryKernel(CONFIG))
        null_traced = best_of(MemoryKernel(CONFIG, tracer=None))
        assert null_traced <= untraced * 2.0 + 1e-3


class TestEmittedEvents:
    def test_stream_spans_match_stream_runs(self):
        run, tracer = traced_run()
        spans = {
            event[2]: event for event in tracer.spans("streams/")
        }
        assert len(spans) == len(run.streams)
        for stream in run.streams:
            event = spans[f"{stream.name} ({stream.element_count} elem)"]
            assert event[1] == f"streams/{stream.name}"
            assert event[3] == stream.first_issue_cycle
            assert event[4] == stream.last_delivery_cycle
            args = event[5]
            assert args["port"] == stream.port
            assert args["start_cycle"] == stream.start_cycle
            assert args["issue_stalls"] == stream.issue_stall_cycles
            assert args["conflict_free"] == stream.conflict_free

    def test_module_spans_cover_every_request_service_interval(self):
        run, tracer = traced_run()
        spans = tracer.spans("memory/module ")
        assert len(spans) == run.aggregate_elements
        by_module: dict[int, int] = {}
        for _, track, _, begin, end, args in spans:
            module = int(track.rsplit(" ", 1)[1])
            by_module[module] = by_module.get(module, 0) + (end - begin + 1)
        for module, busy in enumerate(run.module_busy_cycles):
            assert by_module.get(module, 0) == busy
        intervals = {
            (event[3], event[4], event[5]["address"]) for event in spans
        }
        for stream in run.streams:
            for request in stream.requests:
                assert (
                    request.start_cycle,
                    request.finish_cycle,
                    request.address,
                ) in intervals

    def test_port_instants_one_issue_and_delivery_per_request(self):
        run, tracer = traced_run()
        issues = [
            event for event in tracer.instants("ports/") if event[2] == "issue"
        ]
        delivers = [
            event
            for event in tracer.instants("ports/")
            if event[2] == "deliver"
        ]
        assert len(issues) == run.aggregate_elements
        assert len(delivers) == run.aggregate_elements
        # One address bus per port: issue instants on a port never share
        # a cycle.
        per_port: dict[str, list[int]] = {}
        for _, track, _, at, _, _ in issues:
            per_port.setdefault(track, []).append(at)
        for cycles in per_port.values():
            assert len(cycles) == len(set(cycles))
        assert max(event[3] for event in delivers) == run.total_cycles

    def test_in_flight_counter_is_sane(self):
        run, tracer = traced_run()
        samples = [
            event for event in tracer.events if event[0] == "counter"
        ]
        levels = [event[5]["in_flight"] for event in samples]
        assert all(level >= 0 for level in levels)
        assert levels[-1] == 0  # everything delivered by the end
        assert max(levels) > 0

    def test_chrome_export_is_cycle_consistent(self):
        run, tracer = traced_run()
        events = chrome_trace_events(tracer)
        spans = [event for event in events if event["ph"] == "X"]
        assert spans, "kernel trace exported no spans"
        last = max(event["ts"] + event["dur"] - 1 for event in spans)
        assert last == run.total_cycles
        assert min(event["ts"] for event in spans) >= 1


class TestStaggeredStreamsInTrace:
    def test_start_cycle_surfaces_in_stream_span(self):
        streams = [
            KernelStream.of(
                "a", PLANNER.plan(VectorAccess(0, 12, 32)).request_stream()
            ),
            KernelStream.of(
                "b",
                PLANNER.plan(VectorAccess(1, 12, 32)).request_stream(),
                start_cycle=50,
            ),
        ]
        run, tracer = traced_run(streams)
        spans = {event[1]: event for event in tracer.spans("streams/")}
        late = spans["streams/b"]
        assert late[5]["start_cycle"] == 50
        assert late[3] >= 50  # cannot issue before its start cycle
        assert run.streams[1].first_issue_cycle == late[3]
