"""Unit tests for the tracing core: event collection, shifting, export.

The tracer's contract has three legs — a live :class:`Tracer` collects
cycle-stamped tuples, the :data:`NULL_TRACER` collects nothing at zero
cost, and :func:`chrome_trace_events` turns collected events into
schema-valid Chrome ``trace_event`` dicts (groups -> processes, lanes
-> threads).  Each leg is pinned here in isolation; the simulators'
emission is covered by ``test_kernel_trace.py``.
"""

from __future__ import annotations

import json

from repro.obs import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    chrome_trace_events,
    resolve_tracer,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.obs.tracer import KIND_COUNTER, KIND_INSTANT, KIND_SPAN


class TestNullTracer:
    def test_disabled_and_silent(self):
        assert NULL_TRACER.enabled is False
        NULL_TRACER.span("memory/module 0", "req", 1, 4, address=7)
        NULL_TRACER.instant("ports/port 0", "issue", 3)
        NULL_TRACER.counter("memory/in flight", "in flight", 2, 5)
        assert not hasattr(NULL_TRACER, "events")

    def test_shifted_is_itself(self):
        assert NULL_TRACER.shifted(10) is NULL_TRACER

    def test_resolve_tracer(self):
        assert resolve_tracer(None) is NULL_TRACER
        tracer = Tracer()
        assert resolve_tracer(tracer) is tracer
        assert isinstance(resolve_tracer(None), NullTracer)


class TestTracer:
    def test_collects_event_tuples(self):
        tracer = Tracer()
        assert tracer.enabled is True
        tracer.span("memory/module 1", "elem 0", 2, 9, address=12)
        tracer.instant("ports/port 0", "issue", 1, stream="a")
        tracer.counter("memory/in flight", "in flight", 3, 2)
        kinds = [event[0] for event in tracer.events]
        assert kinds == [KIND_SPAN, KIND_INSTANT, KIND_COUNTER]
        span = tracer.events[0]
        assert span[1:5] == ("memory/module 1", "elem 0", 2, 9)
        assert span[5] == {"address": 12}

    def test_domain_kwargs_do_not_collide_with_positionals(self):
        # Emitters pass start_cycle= through **args; the positional
        # parameters are deliberately named begin/end/at to allow it.
        tracer = Tracer()
        tracer.span("streams/a", "a", 1, 5, start_cycle=1, end_cycle=5)
        assert tracer.events[0][5] == {"start_cycle": 1, "end_cycle": 5}

    def test_spans_and_instants_filter_by_prefix(self):
        tracer = Tracer()
        tracer.span("memory/module 0", "x", 1, 2)
        tracer.span("machine/execute", "y", 3, 4)
        tracer.instant("ports/port 0", "issue", 1)
        assert len(tracer.spans()) == 2
        assert len(tracer.spans("memory/")) == 1
        assert len(tracer.instants("ports/")) == 1

    def test_shifted_offsets_every_kind(self):
        tracer = Tracer()
        shifted = tracer.shifted(100)
        shifted.span("a/b", "s", 1, 4)
        shifted.instant("a/b", "i", 2)
        shifted.counter("a/b", "c", 3, 9)
        assert [event[3] for event in tracer.events] == [101, 102, 103]
        assert tracer.events[0][4] == 104

    def test_shifted_zero_is_identity(self):
        tracer = Tracer()
        assert tracer.shifted(0) is tracer

    def test_shifted_composes(self):
        tracer = Tracer()
        double = tracer.shifted(10).shifted(5)
        double.span("a/b", "s", 1, 1)
        assert tracer.events[0][3] == 16
        assert double.shifted(0) is double


class TestChromeExport:
    def build(self):
        tracer = Tracer()
        tracer.span("memory/module 0", "elem 0", 2, 9, address=12)
        tracer.span("memory/module 1", "elem 1", 3, 10)
        tracer.instant("ports/port 0", "issue", 1)
        tracer.counter("memory/in flight", "in flight", 2, 1)
        return tracer

    def test_metadata_announces_processes_and_threads(self):
        events = chrome_trace_events(self.build())
        meta = [event for event in events if event["ph"] == "M"]
        process_names = {
            event["args"]["name"]
            for event in meta
            if event["name"] == "process_name"
        }
        thread_names = {
            event["args"]["name"]
            for event in meta
            if event["name"] == "thread_name"
        }
        assert process_names == {"memory", "ports"}
        assert {"module 0", "module 1", "port 0", "in flight"} <= thread_names

    def test_lanes_of_one_group_share_a_pid(self):
        events = chrome_trace_events(self.build())
        spans = [event for event in events if event["ph"] == "X"]
        assert len(spans) == 2
        assert spans[0]["pid"] == spans[1]["pid"]
        assert spans[0]["tid"] != spans[1]["tid"]

    def test_span_duration_covers_closed_interval(self):
        events = chrome_trace_events(self.build())
        span = next(event for event in events if event["ph"] == "X")
        assert span["ts"] == 2
        assert span["dur"] == 8  # cycles 2..9 inclusive
        assert span["args"] == {"address": 12}

    def test_instants_and_counters(self):
        events = chrome_trace_events(self.build())
        instant = next(event for event in events if event["ph"] == "i")
        assert instant["s"] == "t" and instant["ts"] == 1
        counter = next(event for event in events if event["ph"] == "C")
        assert counter["args"] == {"in flight": 1}

    def test_every_event_is_json_safe(self):
        payload = to_chrome_trace(self.build())
        text = json.dumps(payload)
        assert json.loads(text)["traceEvents"]

    def test_write_chrome_trace_creates_parents(self, tmp_path):
        target = tmp_path / "deep" / "nested" / "trace.json"
        written = write_chrome_trace(self.build(), target)
        assert written == target
        data = json.loads(target.read_text())
        assert {event["ph"] for event in data["traceEvents"]} == {
            "M",
            "X",
            "i",
            "C",
        }
