"""HistoryDB: ingestion from real lab runs, trends, regression gating.

The integration half runs genuine lab batches (serial backend, tiny
scenarios) into a tmp root and checks that ingesting the store yields
the metric rows the scenario actually produced.  The gating half
fabricates manifests with known values so the direction-aware
tolerance arithmetic can be pinned exactly.
"""

from __future__ import annotations

import json

import pytest

from repro.lab import ArtifactStore, run_jobs, scenario_job, write_run_artifacts
from repro.obs.history import (
    HISTORY_FILENAME,
    HistoryDB,
    current_git_commit,
    metric_direction,
)
from repro.scenarios import ScenarioSpec

SPEC = {
    "name": "hist-demo",
    "mapping": {"kind": "matched-xor", "params": {"t": 2, "s": 3}},
    "memory": {"t": 2},
    "workload": {
        "kind": "strided",
        "params": {"base": 0, "stride": 4, "length": 32},
    },
}


def run_once(root) -> str:
    store = ArtifactStore(root)
    report = run_jobs(
        [scenario_job(ScenarioSpec.from_dict(SPEC))],
        store=store,
        backend="serial",
    )
    write_run_artifacts(store, report)
    return report.run_id


def bench_payload(*, mean: float, created: str) -> dict:
    return {
        "benchmarks": [
            {
                "name": "test_kernel_two_streams_one_bus",
                "stats": {"mean": mean, "min": mean * 0.9, "max": mean * 1.2},
            }
        ],
        "repro_meta": {
            "git_commit": "feedc0ffee",
            "package_version": "1.5.0",
            "created_at": created,
        },
    }


def fake_manifest(run_id: str, created: str, elapsed: float) -> dict:
    return {
        "run_id": run_id,
        "created_at": created,
        "jobs": [
            {
                "job_id": "demo-job",
                "config_hash": "0" * 16,
                "elapsed_seconds": elapsed,
            }
        ],
    }


class TestMetricDirection:
    @pytest.mark.parametrize(
        "metric",
        ["latency", "total_cycles", "issue_stalls", "mean_seconds",
         "elapsed_seconds", "made_up_cycles", "queue_latency"],
    )
    def test_lower_is_better(self, metric):
        assert metric_direction(metric) == "lower"

    @pytest.mark.parametrize(
        "metric",
        ["efficiency", "conflict_free", "cache_hit_rate", "all_passed"],
    )
    def test_higher_is_better(self, metric):
        assert metric_direction(metric) == "higher"

    def test_unknown_metric_has_no_direction(self):
        assert metric_direction("made_up_thing") is None


class TestCurrentGitCommit:
    def test_env_sha_wins(self, monkeypatch):
        monkeypatch.setenv("GITHUB_SHA", "abc123")
        assert current_git_commit() == "abc123"

    def test_repo_commit_is_hex(self, monkeypatch):
        monkeypatch.delenv("GITHUB_SHA", raising=False)
        commit = current_git_commit()
        assert commit == "" or len(commit) == 40


class TestIngestStore:
    def test_real_lab_run_round_trips(self, tmp_path):
        run_id = run_once(tmp_path / "lab")
        store = ArtifactStore(tmp_path / "lab")
        db = HistoryDB(tmp_path / "lab" / HISTORY_FILENAME)
        counts = db.ingest_store(store)
        assert counts["manifests"] == 1
        assert counts["metrics"] > 0
        runs = db.runs()
        assert [entry["run_id"] for entry in runs] == [run_id]
        assert runs[0]["kind"] == "lab"
        assert runs[0]["job_count"] == 1
        names = dict(db.metric_names())
        assert "latency" in names
        assert "efficiency" in names
        assert "elapsed_seconds" in names
        # extra: prefixes from metric_rows() are stripped on the way in
        assert not any(name.startswith("extra:") for name in names)

    def test_trend_carries_run_identity_and_scenario(self, tmp_path):
        run_once(tmp_path / "lab")
        store = ArtifactStore(tmp_path / "lab")
        db = HistoryDB(tmp_path / "lab" / HISTORY_FILENAME)
        db.ingest_store(store)
        points = db.trend("latency")
        assert len(points) == 1
        point = points[0]
        assert point["scenario"] == "hist-demo"
        assert point["kind"] == "lab"
        assert point["value"] > 0
        assert point["git_commit"] == current_git_commit()
        assert db.trend("latency", scenario="hist-demo") == points
        assert db.trend("latency", scenario="no-such") == []

    def test_reingest_is_idempotent(self, tmp_path):
        run_once(tmp_path / "lab")
        store = ArtifactStore(tmp_path / "lab")
        db = HistoryDB(tmp_path / "lab" / HISTORY_FILENAME)
        first = db.ingest_store(store)
        second = db.ingest_store(store)
        assert first == second
        assert len(db.trend("latency")) == 1
        assert len(db.runs()) == 1

    def test_two_runs_make_a_two_point_trend(self, tmp_path):
        store = ArtifactStore(tmp_path / "lab")
        run_once(tmp_path / "lab")
        run_once(tmp_path / "lab")  # cached second run, distinct run_id
        db = HistoryDB(tmp_path / "lab" / HISTORY_FILENAME)
        db.ingest_store(store)
        points = db.trend("latency")
        assert len(points) == 2
        assert len({point["run_id"] for point in points}) == 2
        assert db.trend("latency", limit=1) == points[-1:]


class TestCommitStamping:
    """Manifests from outside a git checkout must still ingest.

    A tarball install (or a detached worker host) writes manifests
    whose ``git_commit`` is missing, empty, or JSON ``null``; the runs
    table column is NOT NULL, so ingest stamps ``"unknown"`` and keeps
    the row instead of crashing.
    """

    @pytest.mark.parametrize("commit", [None, "", 0], ids=["null", "empty", "nonstr"])
    def test_unstamped_manifest_ingests_as_unknown(self, tmp_path, commit):
        manifest = fake_manifest("r-unstamped", "2026-08-07T00:00:00Z", 1.5)
        manifest["git_commit"] = commit
        path = tmp_path / "manifest.json"
        path.write_text(json.dumps(manifest))
        db = HistoryDB(tmp_path / HISTORY_FILENAME)
        assert db.ingest_manifest(path) > 0
        [run] = db.runs()
        assert run["run_id"] == "r-unstamped"
        assert run["git_commit"] == "unknown"
        [point] = db.trend("elapsed_seconds")
        assert point["value"] == 1.5

    def test_missing_key_also_ingests_as_unknown(self, tmp_path):
        manifest = fake_manifest("r-nokey", "2026-08-07T00:00:00Z", 2.0)
        assert "git_commit" not in manifest
        path = tmp_path / "manifest.json"
        path.write_text(json.dumps(manifest))
        db = HistoryDB(tmp_path / HISTORY_FILENAME)
        db.ingest_manifest(path)
        [run] = db.runs()
        assert run["git_commit"] == "unknown"

    def test_stamped_manifest_keeps_its_commit(self, tmp_path):
        manifest = fake_manifest("r-stamped", "2026-08-07T00:00:00Z", 1.0)
        manifest["git_commit"] = "feedc0ffee"
        path = tmp_path / "manifest.json"
        path.write_text(json.dumps(manifest))
        db = HistoryDB(tmp_path / HISTORY_FILENAME)
        db.ingest_manifest(path)
        [run] = db.runs()
        assert run["git_commit"] == "feedc0ffee"


class TestIngestBench:
    def test_bench_rows_and_meta_stamp(self, tmp_path):
        bench = tmp_path / "BENCH_demo.json"
        bench.write_text(
            json.dumps(bench_payload(mean=0.5, created="2026-01-01T00:00:00Z"))
        )
        db = HistoryDB(tmp_path / HISTORY_FILENAME)
        assert db.ingest_bench(bench) == 3  # mean/min/max present
        (run,) = db.runs()
        assert run["kind"] == "bench"
        assert run["git_commit"] == "feedc0ffee"
        assert run["package_version"] == "1.5.0"
        (point,) = db.trend("mean_seconds")
        assert point["value"] == 0.5
        assert point["job_id"] == "test_kernel_two_streams_one_bus"

    def test_reingest_same_file_is_idempotent(self, tmp_path):
        bench = tmp_path / "BENCH_demo.json"
        bench.write_text(
            json.dumps(bench_payload(mean=0.5, created="2026-01-01T00:00:00Z"))
        )
        db = HistoryDB(tmp_path / HISTORY_FILENAME)
        db.ingest_bench(bench)
        db.ingest_bench(bench)
        assert len(db.runs()) == 1
        assert len(db.trend("mean_seconds")) == 1


class TestIngestPath:
    def test_dispatch_by_shape(self, tmp_path):
        run_once(tmp_path / "lab")
        bench = tmp_path / "BENCH_demo.json"
        bench.write_text(
            json.dumps(bench_payload(mean=0.2, created="2026-01-02T00:00:00Z"))
        )
        db = HistoryDB(tmp_path / HISTORY_FILENAME)
        assert db.ingest_path(tmp_path / "lab") > 0  # lab root dir
        assert db.ingest_path(bench) == 3  # bench JSON file
        assert db.ingest_path(tmp_path / "nope") == 0  # missing path
        garbage = tmp_path / "garbage.json"
        garbage.write_text("not json")
        assert db.ingest_path(garbage) == 0
        kinds = {run["kind"] for run in db.runs()}
        assert kinds == {"lab", "bench"}


class TestFlagRegressions:
    def ingest_pair(self, tmp_path, first: float, second: float) -> HistoryDB:
        db = HistoryDB(tmp_path / HISTORY_FILENAME)
        for index, elapsed in enumerate([first, second]):
            path = tmp_path / f"manifest_{index}.json"
            path.write_text(
                json.dumps(
                    fake_manifest(
                        f"r{index}", f"2026-01-0{index + 1}T00:00:00Z", elapsed
                    )
                )
            )
            db.ingest_manifest(path)
        return db

    def test_lower_is_better_regression_is_flagged(self, tmp_path):
        db = self.ingest_pair(tmp_path, 1.0, 1.5)
        (flag,) = db.flag_regressions(metric="elapsed_seconds")
        assert flag["job_id"] == "demo-job"
        assert flag["direction"] == "lower"
        assert flag["best"] == 1.0
        assert flag["latest"] == 1.5
        assert flag["run_id"] == "r1"
        assert flag["points"] == 2

    def test_within_tolerance_is_not_flagged(self, tmp_path):
        db = self.ingest_pair(tmp_path, 1.0, 1.04)
        assert db.flag_regressions(metric="elapsed_seconds") == []

    def test_tolerance_is_relative_to_best(self, tmp_path):
        # 2.0 -> 2.08 is a 4% slip: inside the default 5% band, outside
        # a 1% band.
        db = self.ingest_pair(tmp_path, 2.0, 2.08)
        assert db.flag_regressions(metric="elapsed_seconds") == []
        flagged = db.flag_regressions(metric="elapsed_seconds", tolerance=0.01)
        assert len(flagged) == 1

    def test_improvement_is_never_flagged(self, tmp_path):
        db = self.ingest_pair(tmp_path, 1.5, 1.0)
        assert db.flag_regressions(metric="elapsed_seconds") == []

    def test_zero_best_flags_any_strictly_worse_move(self, tmp_path):
        # Regression: a zero best has no scale for a relative band, so
        # earlier versions silently reused `tolerance` as an absolute
        # band — a value creeping from 0 to 0.04 passed the gate.
        db = self.ingest_pair(tmp_path, 0.0, 0.04)
        (flag,) = db.flag_regressions(metric="elapsed_seconds")
        assert flag["best"] == 0.0
        assert flag["latest"] == 0.04

    def test_zero_best_absolute_floor_gives_explicit_slack(self, tmp_path):
        db = self.ingest_pair(tmp_path, 0.0, 0.04)
        assert (
            db.flag_regressions(
                metric="elapsed_seconds", absolute_floor=0.1
            )
            == []
        )
        flagged = db.flag_regressions(
            metric="elapsed_seconds", absolute_floor=0.01
        )
        assert len(flagged) == 1

    def test_absolute_floor_is_ignored_for_nonzero_best(self, tmp_path):
        # The floor only substitutes when the relative band collapses;
        # a nonzero best keeps the relative tolerance untouched.
        db = self.ingest_pair(tmp_path, 1.0, 1.04)
        assert (
            db.flag_regressions(
                metric="elapsed_seconds", absolute_floor=0.001
            )
            == []
        )

    def test_single_point_series_cannot_regress(self, tmp_path):
        db = HistoryDB(tmp_path / HISTORY_FILENAME)
        path = tmp_path / "manifest.json"
        path.write_text(
            json.dumps(fake_manifest("r0", "2026-01-01T00:00:00Z", 9.0))
        )
        db.ingest_manifest(path)
        assert db.flag_regressions() == []

    def test_directionless_metrics_are_skipped(self, tmp_path):
        # s (modules) shows up in scenario metric rows but has no
        # better/worse direction; gating must ignore it entirely.
        store = ArtifactStore(tmp_path / "lab")
        run_once(tmp_path / "lab")
        run_once(tmp_path / "lab")
        db = HistoryDB(tmp_path / "lab" / HISTORY_FILENAME)
        db.ingest_store(store)
        flagged = db.flag_regressions()
        for flag in flagged:
            assert metric_direction(flag["metric"]) is not None


class TestEmptyDb:
    def test_queries_on_missing_file_are_empty(self, tmp_path):
        db = HistoryDB(tmp_path / "never-created.sqlite")
        assert db.runs() == []
        assert db.metric_names() == []
        assert db.trend("latency") == []
        assert db.flag_regressions() == []
        assert not db.path.exists()


class TestRunLevelMetrics:
    """Run-level manifest metrics land as ``__run__`` rows.

    Manifests have always carried a run-level ``metrics`` block
    (cache-hit rate, queue latencies, batch tier counts), but ingestion
    used to drop it on the floor — ``lab history`` could trend a job's
    cycles yet never a run's tier mix.
    """

    def test_batch_run_tier_counts_become_trendable(self, tmp_path):
        from repro.batch import BatchBackend

        store = ArtifactStore(tmp_path / "lab")
        report = run_jobs(
            [scenario_job(ScenarioSpec.from_dict(SPEC))],
            store=store,
            backend=BatchBackend(workers=2),
        )
        run_dir = write_run_artifacts(store, report)
        db = HistoryDB(tmp_path / "lab" / HISTORY_FILENAME)
        db.ingest_manifest(run_dir / "manifest.json", store=store)
        by_metric = {
            point["metric"]: point for point in db.trend("batch_jobs")
        }
        assert by_metric["batch_jobs"]["job_id"] == "__run__"
        assert by_metric["batch_jobs"]["value"] == 1.0
        workers = db.trend("batch_workers")
        assert [point["value"] for point in workers] == [2.0]
        assert db.trend("plan_cache_hits")  # present, whatever the count

    def test_non_numeric_run_metrics_are_skipped(self, tmp_path):
        manifest = fake_manifest("rm0", "2026-01-01T00:00:00Z", 1.0)
        manifest["metrics"] = {
            "backend": "batch",
            "cache_hit_rate": 0.5,
            "all_jobs_cached": True,
            "note": "free-text must not become a row",
        }
        path = tmp_path / "manifest.json"
        path.write_text(json.dumps(manifest))
        db = HistoryDB(tmp_path / HISTORY_FILENAME)
        db.ingest_manifest(path)
        run_rows = {
            point["metric"]: point["value"]
            for point in db.trend("cache_hit_rate")
        }
        assert run_rows == {"cache_hit_rate": 0.5}
        assert db.trend("all_jobs_cached")[0]["value"] == 1.0
        assert db.trend("backend") == []
        assert db.trend("note") == []

    def test_run_rows_are_idempotent_across_reingest(self, tmp_path):
        manifest = fake_manifest("rm1", "2026-01-02T00:00:00Z", 1.0)
        manifest["metrics"] = {"batch_fallback": 3}
        path = tmp_path / "manifest.json"
        path.write_text(json.dumps(manifest))
        db = HistoryDB(tmp_path / HISTORY_FILENAME)
        first = db.ingest_manifest(path)
        second = db.ingest_manifest(path)
        assert first == second > 0
        assert len(db.trend("batch_fallback")) == 1
