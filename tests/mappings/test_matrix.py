"""Tests for general GF(2) matrix mappings and the pseudo-random member."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.mappings.linear import MatchedXorMapping
from repro.mappings.matrix import (
    PseudoRandomMapping,
    XorMatrixMapping,
    gf2_rank,
    parity,
)
from repro.mappings.section import SectionXorMapping


class TestParity:
    def test_small_cases(self):
        assert parity(0) == 0
        assert parity(1) == 1
        assert parity(0b1010) == 0
        assert parity(0b1110) == 1

    @given(st.integers(min_value=0, max_value=2**30))
    def test_xor_fold(self, value):
        folded = 0
        v = value
        while v:
            folded ^= v & 1
            v >>= 1
        assert parity(value) == folded


class TestGf2Rank:
    def test_identity(self):
        assert gf2_rank([1, 2, 4, 8]) == 4

    def test_dependent_rows(self):
        assert gf2_rank([0b11, 0b01, 0b10]) == 2

    def test_zero_rows(self):
        assert gf2_rank([0, 0]) == 0

    def test_duplicates(self):
        assert gf2_rank([5, 5, 5]) == 1


class TestXorMatrixMapping:
    def test_rejects_dependent_masks(self):
        with pytest.raises(ConfigurationError):
            XorMatrixMapping([0b11, 0b01, 0b10])

    def test_rejects_oversized_mask(self):
        with pytest.raises(ConfigurationError):
            XorMatrixMapping([1 << 40], address_bits=32)

    def test_matches_matched_xor(self):
        matrix = XorMatrixMapping.from_matched(3, 4)
        direct = MatchedXorMapping(3, 4)
        for address in range(0, 5000, 13):
            assert matrix.module_of(address) == direct.module_of(address)

    def test_matches_section_xor(self):
        matrix = XorMatrixMapping.from_section(3, 4, 9)
        direct = SectionXorMapping(3, 4, 9)
        for address in range(0, 50000, 131):
            assert matrix.module_of(address) == direct.module_of(address)

    @settings(max_examples=30)
    @given(st.integers(min_value=0, max_value=2**12 - 1))
    def test_bijection_via_pivots(self, address):
        mapping = XorMatrixMapping([0b0011, 0b0101, 0b1001], address_bits=12)
        cell = mapping.map(address)
        # No other address in the space shares the cell (checked on a
        # reduced space for cost); sample the address's own coset.
        for other in range(1 << 12):
            if other != address and mapping.map(other) == cell:
                pytest.fail(f"{other} collides with {address} on {cell}")

    def test_cells_distinct_exhaustive_small(self):
        mapping = XorMatrixMapping([0b011, 0b110], address_bits=8)
        cells = {mapping.map(a) for a in range(256)}
        assert len(cells) == 256


class TestPseudoRandomMapping:
    def test_deterministic_per_seed(self):
        a = PseudoRandomMapping(3, seed=7)
        b = PseudoRandomMapping(3, seed=7)
        assert a.masks == b.masks

    def test_different_seeds_differ(self):
        assert (
            PseudoRandomMapping(3, seed=1).masks
            != PseudoRandomMapping(3, seed=2).masks
        )

    def test_full_rank(self):
        for seed in range(10):
            mapping = PseudoRandomMapping(4, seed=seed)
            assert gf2_rank(mapping.masks) == 4

    def test_window_bounds(self):
        with pytest.raises(ConfigurationError):
            PseudoRandomMapping(4, window_bits=2)

    def test_spreads_all_modules(self):
        mapping = PseudoRandomMapping(3, seed=0)
        modules = {mapping.module_of(a) for a in range(4096)}
        assert modules == set(range(8))
