"""Tests for conventional and field interleaving."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.distributions import is_conflict_free
from repro.errors import ConfigurationError
from repro.mappings.interleaved import FieldInterleaved, LowOrderInterleaved


class TestLowOrderInterleaved:
    def test_module_is_low_bits(self):
        mapping = LowOrderInterleaved(3)
        assert [mapping.module_of(a) for a in range(10)] == [
            0, 1, 2, 3, 4, 5, 6, 7, 0, 1,
        ]

    def test_displacement_is_row(self):
        mapping = LowOrderInterleaved(3)
        assert mapping.displacement_of(8) == 1
        assert mapping.displacement_of(17) == 2

    @given(st.integers(min_value=0, max_value=2**16 - 1))
    def test_bijection(self, address):
        mapping = LowOrderInterleaved(3, address_bits=16)
        module, displacement = mapping.map(address)
        assert (displacement << 3) | module == address

    def test_odd_strides_conflict_free(self):
        mapping = LowOrderInterleaved(3)
        for stride in (1, 3, 5, 7, 9, 11):
            modules = mapping.module_sequence(13, stride, 64)
            assert is_conflict_free(modules, 8)

    def test_even_strides_conflict(self):
        mapping = LowOrderInterleaved(3)
        for stride in (2, 4, 8, 6):
            modules = mapping.module_sequence(0, stride, 64)
            assert not is_conflict_free(modules, 8)

    def test_period(self):
        mapping = LowOrderInterleaved(3)
        assert mapping.period(0) == 8
        assert mapping.period(2) == 2
        assert mapping.period(3) == 1
        assert mapping.period(5) == 1


class TestFieldInterleaved:
    def test_module_is_field(self):
        mapping = FieldInterleaved(3, 4)
        assert mapping.module_of(0b0110000) == 0b011
        assert mapping.module_of(0xF) == 0

    def test_field_must_fit(self):
        with pytest.raises(ConfigurationError):
            FieldInterleaved(3, 30, address_bits=32)

    def test_negative_s_rejected(self):
        with pytest.raises(ConfigurationError):
            FieldInterleaved(3, -1)

    @given(st.integers(min_value=0, max_value=2**16 - 1))
    def test_bijection(self, address):
        mapping = FieldInterleaved(3, 5, address_bits=16)
        module, displacement = mapping.map(address)
        low = displacement & 0b11111
        high = displacement >> 5
        reconstructed = (high << 8) | (module << 5) | low
        assert reconstructed == address

    def test_family_s_conflict_free_in_order(self):
        mapping = FieldInterleaved(3, 4)
        for sigma in (1, 3, 5):
            modules = mapping.module_sequence(77, sigma * 16, 64)
            assert is_conflict_free(modules, 8)

    def test_period_formula(self):
        mapping = FieldInterleaved(3, 4)
        assert mapping.period(0) == 128
        assert mapping.period(4) == 8
        assert mapping.period(7) == 1

    def test_s_zero_equals_low_order(self):
        field = FieldInterleaved(3, 0)
        low = LowOrderInterleaved(3)
        for address in range(0, 1000, 7):
            assert field.module_of(address) == low.module_of(address)
