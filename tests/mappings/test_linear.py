"""Tests for the matched XOR mapping of Eq. (1), including Figure 3."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.mappings.linear import MatchedXorMapping

#: Figure 3 of the paper, rows 0..8: entry [row][module] = address.
FIGURE3 = [
    [0, 1, 2, 3, 4, 5, 6, 7],
    [9, 8, 11, 10, 13, 12, 15, 14],
    [18, 19, 16, 17, 22, 23, 20, 21],
    [27, 26, 25, 24, 31, 30, 29, 28],
    [36, 37, 38, 39, 32, 33, 34, 35],
    [45, 44, 47, 46, 41, 40, 43, 42],
    [54, 55, 52, 53, 50, 51, 48, 49],
    [63, 62, 61, 60, 59, 58, 57, 56],
    [64, 65, 66, 67, 68, 69, 70, 71],
]


class TestFigure3:
    def test_layout_matches_paper(self, figure3_mapping):
        for row, expected in enumerate(FIGURE3):
            by_module = {}
            for address in range(row * 8, row * 8 + 8):
                by_module[figure3_mapping.module_of(address)] = address
            assert [by_module[b] for b in range(8)] == expected

    def test_each_group_of_eight_covers_all_modules(self, figure3_mapping):
        for row in range(64):
            modules = {
                figure3_mapping.module_of(address)
                for address in range(row * 8, row * 8 + 8)
            }
            assert modules == set(range(8))


class TestConstruction:
    def test_s_must_be_at_least_t(self):
        with pytest.raises(ConfigurationError):
            MatchedXorMapping(3, 2)

    def test_s_equal_t_allowed(self):
        MatchedXorMapping(3, 3)

    def test_field_must_fit_address_space(self):
        with pytest.raises(ConfigurationError):
            MatchedXorMapping(3, 30, address_bits=32)

    def test_t_alias(self):
        assert MatchedXorMapping(3, 4).t == 3


class TestModuleFormula:
    @given(st.integers(min_value=0, max_value=2**20 - 1))
    def test_matches_xor_of_fields(self, address):
        mapping = MatchedXorMapping(3, 4)
        low = address & 0b111
        high = (address >> 4) & 0b111
        assert mapping.module_of(address) == low ^ high

    @given(st.integers(min_value=0, max_value=2**16 - 1))
    def test_bijection(self, address):
        mapping = MatchedXorMapping(3, 4, address_bits=16)
        module, displacement = mapping.map(address)
        assert mapping.address_of(module, displacement) == address

    def test_all_cells_distinct_small_space(self):
        mapping = MatchedXorMapping(2, 3, address_bits=10)
        cells = {mapping.map(a) for a in range(1 << 10)}
        assert len(cells) == 1 << 10


class TestPeriod:
    def test_period_formula(self):
        mapping = MatchedXorMapping(3, 4)
        assert mapping.period(0) == 128
        assert mapping.period(4) == 8
        assert mapping.period(7) == 1
        assert mapping.period(10) == 1

    def test_canonical_distribution_is_periodic(self):
        mapping = MatchedXorMapping(3, 4, address_bits=20)
        for family, sigma, base in [(0, 3, 17), (2, 5, 4), (4, 1, 99)]:
            stride = sigma * (1 << family)
            period = mapping.period(family)
            sequence = mapping.module_sequence(base, stride, 3 * period)
            assert sequence[:period] * 3 == sequence


class TestOrderedConflictFreedom:
    def test_family_s_is_conflict_free_in_order(self):
        """Harper's result: ordered access conflict-free for x = s only."""
        from repro.core.distributions import is_conflict_free

        mapping = MatchedXorMapping(3, 4)
        for sigma in (1, 3, 5):
            for base in (0, 7, 1000):
                modules = mapping.module_sequence(base, sigma * 16, 128)
                assert is_conflict_free(modules, 8)

    def test_other_families_conflict_in_order(self):
        from repro.core.distributions import is_conflict_free

        mapping = MatchedXorMapping(3, 4)
        for family in (0, 1, 2, 3, 5):
            modules = mapping.module_sequence(16, 3 * (1 << family), 128)
            assert not is_conflict_free(modules, 8)
