"""Tests for the unmatched section mapping of Eq. (2), including Figure 7."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.mappings.section import SectionXorMapping


class TestConstruction:
    def test_requires_s_at_least_t(self):
        with pytest.raises(ConfigurationError):
            SectionXorMapping(t=3, s=2, y=9)

    def test_requires_y_at_least_s_plus_t(self):
        with pytest.raises(ConfigurationError):
            SectionXorMapping(t=3, s=4, y=6)

    def test_requires_positive_t(self):
        with pytest.raises(ConfigurationError):
            SectionXorMapping(t=0, s=1, y=2)

    def test_section_field_must_fit(self):
        with pytest.raises(ConfigurationError):
            SectionXorMapping(t=3, s=4, y=30, address_bits=32)

    def test_module_count_is_t_squared(self):
        mapping = SectionXorMapping(t=3, s=4, y=9)
        assert mapping.module_count == 64
        assert mapping.section_count == 8
        assert mapping.modules_per_section == 8


class TestFigure7:
    """Checks against the Figure 7 layout (t=2, m=4, s=3, y=7)."""

    def test_low_addresses_match_eq2(self, figure7_mapping):
        # Below address 128 (= 2**y) the section is 0 and the module is
        # the XOR of the low 2 bits with bits 3..4.
        for address in range(128):
            low = (address & 3) ^ ((address >> 3) & 3)
            assert figure7_mapping.module_of(address) == low

    def test_block_sectioning(self, figure7_mapping):
        # Address blocks of 2**y = 128 words rotate through sections.
        for address, section in [(0, 0), (128, 1), (256, 2), (384, 3), (512, 0)]:
            assert figure7_mapping.section_of(address) == section

    def test_italic_vector_modules(self, figure7_mapping):
        # The lambda=5, A1=6, S=16 vector of Figure 7: elements 0,8,16,24
        # land in modules 2,6,10,14 (Section 4.1's first example).
        addresses = [6 + 16 * i for i in (0, 8, 16, 24)]
        modules = [figure7_mapping.module_of(a) for a in addresses]
        assert modules == [2, 6, 10, 14]

    def test_second_example_modules(self, figure7_mapping):
        # x=6, sigma=3, A1=0: elements 0,2,4,6 -> modules 0,12,8,4.
        addresses = [0 + 192 * i for i in (0, 2, 4, 6)]
        modules = [figure7_mapping.module_of(a) for a in addresses]
        assert modules == [0, 12, 8, 4]

    def test_figure7_specific_cells(self, figure7_mapping):
        # Spot cells read directly off the figure's rows: "9 8 11 10"
        # puts address 9 in module 0 and 8 in module 1; "18 19 16 17"
        # puts 18 in module 0 and 16 in module 2; "27 26 25 24" puts 24
        # in module 3.
        assert figure7_mapping.module_of(9) == 0
        assert figure7_mapping.module_of(8) == 1
        assert figure7_mapping.module_of(18) == 0
        assert figure7_mapping.module_of(16) == 2
        assert figure7_mapping.module_of(24) == 3
        # Block 4 (addresses 512..639) wraps back to section 0, so
        # "512 513 514 515" repeats the pattern of addresses 0..3.
        assert figure7_mapping.module_of(512) == 0
        assert figure7_mapping.module_of(513) == 1


class TestFields:
    def test_supermodule_is_address_field(self):
        mapping = SectionXorMapping(t=3, s=4, y=9)
        for address in (0, 16, 23, 100, 999, 2**20 + 5):
            assert mapping.supermodule_of(address) == (address >> 4) & 7

    def test_module_within_section_consistent(self):
        mapping = SectionXorMapping(t=3, s=4, y=9)
        for address in range(0, 4096, 7):
            module = mapping.module_of(address)
            assert mapping.module_within_section(address) == module & 7
            assert mapping.section_of(address) == module >> 3

    @given(st.integers(min_value=0, max_value=2**18 - 1))
    def test_bijection(self, address):
        mapping = SectionXorMapping(t=3, s=4, y=9, address_bits=18)
        module, displacement = mapping.map(address)
        assert mapping.address_of(module, displacement) == address

    def test_all_cells_distinct_small_space(self):
        mapping = SectionXorMapping(t=2, s=2, y=4, address_bits=9)
        cells = {mapping.map(a) for a in range(1 << 9)}
        assert len(cells) == 1 << 9


class TestPeriods:
    def test_outer_period(self):
        mapping = SectionXorMapping(t=3, s=4, y=9)
        assert mapping.period(0) == 1 << 12
        assert mapping.period(9) == 8
        assert mapping.period(13) == 1

    def test_inner_period(self):
        mapping = SectionXorMapping(t=3, s=4, y=9)
        assert mapping.inner_period(0) == 128
        assert mapping.inner_period(4) == 8
        assert mapping.inner_period(8) == 1

    def test_canonical_distribution_periodicity(self):
        mapping = SectionXorMapping(t=2, s=3, y=7, address_bits=20)
        for family in (3, 5, 7):
            period = mapping.period(family)
            sequence = mapping.module_sequence(6, 1 << family, 2 * period)
            assert sequence[:period] * 2 == sequence
