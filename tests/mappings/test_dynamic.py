"""Tests for the per-stride dynamic scheme baseline."""

from __future__ import annotations

import pytest

from repro.core.distributions import is_conflict_free
from repro.errors import ConfigurationError
from repro.mappings.dynamic import DynamicSchemeSelector


class TestMappingForStride:
    def test_own_family_is_conflict_free(self):
        selector = DynamicSchemeSelector(3)
        for stride in (1, 3, 6, 12, 40, 96):
            mapping = selector.mapping_for_stride(stride)
            modules = mapping.module_sequence(5, stride, 64)
            assert is_conflict_free(modules, 8), stride

    def test_field_position_follows_family(self):
        selector = DynamicSchemeSelector(3)
        assert selector.mapping_for_stride(1).s == 0
        assert selector.mapping_for_stride(12).s == 2
        assert selector.mapping_for_stride(96).s == 5

    def test_out_of_space_family_rejected(self):
        selector = DynamicSchemeSelector(3, address_bits=16)
        with pytest.raises(ConfigurationError):
            selector.mapping_for_stride(1 << 15)


class TestCrossPenalty:
    def test_other_family_conflicts(self):
        """An array stored for stride 8 accessed with stride 1 conflicts."""
        selector = DynamicSchemeSelector(3)
        modules = selector.cross_penalty_sequence(
            stored_for=8, accessed_with=64, start=0, length=64
        )
        assert not is_conflict_free(modules, 8)

    def test_same_family_is_fine(self):
        selector = DynamicSchemeSelector(3)
        modules = selector.cross_penalty_sequence(
            stored_for=8, accessed_with=24, start=3, length=64
        )
        assert is_conflict_free(modules, 8)
