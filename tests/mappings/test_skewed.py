"""Tests for row-rotation skewing."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.distributions import is_conflict_free
from repro.errors import ConfigurationError
from repro.mappings.skewed import SkewedMapping


class TestConstruction:
    def test_requires_s_at_least_m(self):
        with pytest.raises(ConfigurationError):
            SkewedMapping(3, 2)

    def test_requires_odd_distance(self):
        with pytest.raises(ConfigurationError):
            SkewedMapping(3, 4, distance=2)

    def test_valid(self):
        SkewedMapping(3, 4, distance=3)


class TestModuleFormula:
    def test_row_rotation(self):
        mapping = SkewedMapping(2, 2, distance=1)
        # Row 0 (addresses 0..3): modules 0..3; row 1: rotated by 1.
        assert [mapping.module_of(a) for a in range(4)] == [0, 1, 2, 3]
        assert [mapping.module_of(a) for a in range(4, 8)] == [1, 2, 3, 0]
        assert [mapping.module_of(a) for a in range(8, 12)] == [2, 3, 0, 1]

    @given(st.integers(min_value=0, max_value=2**16 - 1))
    def test_bijection(self, address):
        mapping = SkewedMapping(3, 4, address_bits=16)
        seen_module, displacement = mapping.map(address)
        # Reconstruct: displacement fixes a >> m; search the low bits.
        candidates = [
            a
            for a in range((displacement << 3), (displacement << 3) + 8)
            if mapping.module_of(a) == seen_module
        ]
        assert candidates == [address]

    def test_family_s_conflict_free_in_order(self):
        mapping = SkewedMapping(3, 4)
        for sigma in (1, 3, 5):
            for base in (0, 9, 100):
                modules = mapping.module_sequence(base, sigma * 16, 64)
                assert is_conflict_free(modules, 8)

    def test_period_formula_matches_observation(self):
        mapping = SkewedMapping(3, 4, address_bits=20)
        for family in range(5):
            period = mapping.period(family)
            sequence = mapping.module_sequence(5, 3 * (1 << family), 2 * period)
            assert sequence[:period] * 2 == sequence


class TestOutOfOrderCompatibility:
    def test_planner_reorders_skewed_mapping(self):
        """The conclusions claim the scheme works with skewing too."""
        from repro.core.planner import AccessPlanner
        from repro.core.vector import VectorAccess

        planner = AccessPlanner(SkewedMapping(3, 4), 3)
        for family in range(5):
            for base in (0, 11, 1234):
                plan = planner.plan(
                    VectorAccess(base, 5 * (1 << family), 128), mode="auto"
                )
                assert plan.conflict_free, (family, base)
                assert plan.scheme == "conflict_free"
