"""Tests for the mapping base utilities."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.mappings.base import (
    bit_field,
    empirical_period,
    is_power_of_two,
)
from repro.mappings.interleaved import LowOrderInterleaved
from repro.mappings.linear import MatchedXorMapping


class TestIsPowerOfTwo:
    def test_accepts_powers(self):
        for exponent in range(20):
            assert is_power_of_two(1 << exponent)

    def test_rejects_non_powers(self):
        for value in (0, -1, -8, 3, 5, 6, 7, 12, 100):
            assert not is_power_of_two(value)

    @given(st.integers(min_value=1, max_value=10**9))
    def test_matches_bit_count(self, value):
        assert is_power_of_two(value) == (bin(value).count("1") == 1)


class TestBitField:
    def test_basic_extraction(self):
        assert bit_field(0b110100, 2, 3) == 0b101

    def test_zero_width(self):
        assert bit_field(0xFFFF, 4, 0) == 0

    def test_negative_low_rejected(self):
        with pytest.raises(ValueError):
            bit_field(1, -1, 2)

    @given(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=0, max_value=28),
        st.integers(min_value=0, max_value=8),
    )
    def test_agrees_with_shift_mask(self, value, low, width):
        assert bit_field(value, low, width) == (value >> low) & ((1 << width) - 1)


class TestMappingBasics:
    def test_module_count(self):
        assert LowOrderInterleaved(3).module_count == 8

    def test_reduce_wraps(self):
        mapping = LowOrderInterleaved(3, address_bits=8)
        assert mapping.reduce(256) == 0
        assert mapping.reduce(257) == 1
        assert mapping.reduce(-1) == 255

    def test_bad_module_bits(self):
        with pytest.raises(ConfigurationError):
            LowOrderInterleaved(-1)

    def test_address_bits_must_cover_modules(self):
        with pytest.raises(ConfigurationError):
            LowOrderInterleaved(8, address_bits=4)

    def test_module_sequence_matches_pointwise(self):
        mapping = MatchedXorMapping(3, 4)
        sequence = mapping.module_sequence(100, 12, 20)
        assert sequence == [
            mapping.module_of(mapping.reduce(100 + 12 * i)) for i in range(20)
        ]


class TestEmpiricalPeriod:
    def test_matches_analytic_for_xor(self):
        mapping = MatchedXorMapping(3, 4, address_bits=16)
        for family in range(6):
            stride = 1 << family
            assert empirical_period(mapping, stride) == mapping.period(family)

    def test_low_order_interleaving(self):
        mapping = LowOrderInterleaved(3, address_bits=16)
        assert empirical_period(mapping, 1) == 8
        assert empirical_period(mapping, 2) == 4
        assert empirical_period(mapping, 8) == 1

    def test_odd_sigma_same_period(self):
        mapping = MatchedXorMapping(3, 4, address_bits=16)
        assert empirical_period(mapping, 3 * 4) == mapping.period(2)

    def test_default_period_uses_empirical(self):
        # The ABC's default period() measures; spot-check consistency.
        mapping = LowOrderInterleaved(2, address_bits=12)
        assert mapping.period(0) == 4
