"""End-to-end integration scenarios across all subsystems."""

from __future__ import annotations

from repro.core.planner import AccessPlanner
from repro.core.vector import VectorAccess
from repro.hardware.oos_engine import Figure6Engine
from repro.memory.config import MemoryConfig
from repro.memory.system import MemorySystem
from repro.processor.decoupled import DecoupledVectorMachine
from repro.processor.program import assemble
from repro.processor.stripmine import daxpy_program
from repro.workloads.kernels import (
    fft_butterfly_accesses,
    matrix_column_accesses,
    matrix_diagonal_access,
)


class TestHardwareDrivenSimulation:
    """The Figure 6 engine's stream through the real memory system."""

    def test_engine_stream_is_conflict_free_on_the_machine(self):
        config = MemoryConfig.matched(t=3, s=4)
        planner = AccessPlanner(config.mapping, 3)
        system = MemorySystem(config)
        for family in range(5):
            vector = VectorAccess(321, 7 * (1 << family), 128)
            engine = Figure6Engine(planner, vector)
            result = system.run_stream(engine.request_stream())
            assert result.conflict_free
            assert result.latency == 137


class TestMatrixWorkloads:
    def test_power_of_two_columns_all_conflict_free(self):
        """The killer pattern: 64-wide matrix columns (family 6 > s would
        fail on a matched memory, so use the unmatched design)."""
        config = MemoryConfig.unmatched(t=3, s=4, y=9)
        planner = AccessPlanner(config.mapping, 3)
        system = MemorySystem(config)
        for access in matrix_column_accesses(128, 64)[:8]:
            plan = planner.plan(access, mode="auto")
            result = system.run_plan(plan)
            assert result.conflict_free
            assert result.latency == 8 + 128 + 1

    def test_matched_memory_columns_need_small_power(self):
        """On the matched design columns of width 16 (family 4 = s) fit."""
        config = MemoryConfig.matched(t=3, s=4)
        planner = AccessPlanner(config.mapping, 3)
        system = MemorySystem(config)
        for access in matrix_column_accesses(128, 16)[:4]:
            assert system.run_plan(planner.plan(access)).conflict_free

    def test_diagonal_is_family_zero(self):
        config = MemoryConfig.matched(t=3, s=4)
        planner = AccessPlanner(config.mapping, 3)
        system = MemorySystem(config)
        access = matrix_diagonal_access(128)
        result = system.run_plan(planner.plan(access))
        assert result.conflict_free


class TestFftWorkload:
    def test_early_stages_conflict_free_on_unmatched(self):
        """Radix-2 FFT stages whose vectors span at least one reorder
        chunk run at minimum latency; later stages (long stride, short
        vector) fall back to ordered access — the Section 5-H trade-off."""
        config = MemoryConfig.unmatched(t=3, s=4, y=9)
        planner = AccessPlanner(config.mapping, 3)
        system = MemorySystem(config)
        n = 1 << 10
        for stage in range(4):
            for access in fft_butterfly_accesses(n, stage)[:4]:
                plan = planner.plan(access, mode="auto")
                result = system.run_plan(plan)
                minimum = 8 + access.length + 1
                assert result.latency == minimum, (stage, access)

    def test_late_stages_fall_back_to_ordered(self):
        """Stage 4 of a 1K FFT: stride family 5 but length 32 < chunk."""
        config = MemoryConfig.unmatched(t=3, s=4, y=9)
        planner = AccessPlanner(config.mapping, 3)
        access = fft_butterfly_accesses(1 << 10, 4)[0]
        plan = planner.plan(access, mode="auto")
        assert plan.scheme == "canonical"


class TestWholeMachine:
    def test_daxpy_on_unmatched_memory(self):
        machine = DecoupledVectorMachine(
            MemoryConfig.unmatched(t=3, s=4, y=9),
            register_length=128,
            chaining=True,
        )
        n = 256
        xs = [float(i) for i in range(n)]
        ys = [1.0] * n
        machine.store.write_vector(0, 64, xs)  # stride-64 x (family 6)
        machine.store.write_vector(10**6, 1, ys)
        program = daxpy_program(n, 128, 0.5, 0, 64, 10**6, 1)
        result = machine.run(program)
        out = machine.store.read_vector(10**6, 1, n)
        assert out == [0.5 * x + y for x, y in zip(xs, ys)]
        assert result.conflict_free_loads() == len(result.memory_timings())

    def test_assembled_program_runs(self):
        machine = DecoupledVectorMachine(
            MemoryConfig.matched(t=3, s=4), register_length=128
        )
        machine.store.write_vector(0, 3, [float(i) for i in range(128)])
        machine.store.write_vector(4096, 1, [10.0] * 128)
        program = assemble(
            """
            vload  v1, base=0, stride=3
            vload  v2, base=4096, stride=1
            vscale v3, v1, scalar=2.0
            vadd   v4, v3, v2
            vstore v4, base=8192, stride=1
            """
        )
        machine.run(program)
        out = machine.store.read_vector(8192, 1, 128)
        assert out == [2.0 * i + 10.0 for i in range(128)]

    def test_register_file_state_persists_across_runs(self):
        machine = DecoupledVectorMachine(
            MemoryConfig.matched(t=3, s=4), register_length=128
        )
        machine.store.write_vector(0, 1, [5.0] * 128)
        machine.run(assemble("vload v1, base=0, stride=1"))
        machine.run(assemble("vscale v2, v1, scalar=2.0\nvstore v2, base=500, stride=1"))
        assert machine.store.read_vector(500, 1, 128) == [10.0] * 128


class TestOrderedVsReorderedOnRealKernels:
    def test_column_sweep_vs_xor_ordered(self):
        """On the XOR mapping, reordering removes the ordered-access
        penalty exactly: family s is already optimal, families below s
        pay a bounded per-period excess that the reorder eliminates."""
        config = MemoryConfig.matched(t=3, s=4, input_capacity=1)
        planner = AccessPlanner(config.mapping, 3)
        system = MemorySystem(config)

        # Width 16 = family 4 = s: both strategies are conflict-free.
        for access in matrix_column_accesses(128, 16)[:4]:
            auto = system.run_plan(planner.plan(access, mode="auto"))
            ordered = system.run_plan(planner.plan(access, mode="ordered"))
            assert auto.latency == ordered.latency == 137

        # Width 4 = family 2: ordered pays an excess; reordered does not.
        for access in matrix_column_accesses(128, 4)[:4]:
            auto = system.run_plan(planner.plan(access, mode="auto"))
            ordered = system.run_plan(planner.plan(access, mode="ordered"))
            assert auto.latency == 137
            assert ordered.latency > 137

    def test_column_sweep_vs_conventional_interleaving(self):
        """The paper's headline contrast: conventional low-order
        interleaving serialises power-of-two columns (stride 4 lives in
        2 modules -> ~4 cycles/element), while the XOR design with
        reordering stays at one element per cycle."""
        from repro.mappings.interleaved import LowOrderInterleaved

        baseline_config = MemoryConfig(
            LowOrderInterleaved(3), 3, input_capacity=4
        )
        baseline = MemorySystem(baseline_config)
        baseline_planner = AccessPlanner(baseline_config.mapping, 3)

        xor_config = MemoryConfig.matched(t=3, s=4)
        xor_system = MemorySystem(xor_config)
        xor_planner = AccessPlanner(xor_config.mapping, 3)

        for access in matrix_column_accesses(128, 4)[:4]:
            conventional = baseline.run_plan(
                baseline_planner.plan(access, mode="ordered")
            )
            proposed = xor_system.run_plan(xor_planner.plan(access, mode="auto"))
            assert proposed.latency == 137
            assert conventional.latency > 3 * proposed.latency
