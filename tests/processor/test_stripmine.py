"""Tests for strip-mining helpers."""

from __future__ import annotations

import pytest

from repro.errors import ProgramError
from repro.memory.config import MemoryConfig
from repro.processor.decoupled import DecoupledVectorMachine
from repro.processor.stripmine import (
    daxpy_program,
    elementwise_product_program,
    full_strip_fraction,
    strip_bounds,
)


class TestStripBounds:
    def test_exact_multiple(self):
        strips = strip_bounds(256, 128)
        assert [(s.offset, s.length) for s in strips] == [(0, 128), (128, 128)]

    def test_remainder(self):
        strips = strip_bounds(300, 128)
        assert [(s.offset, s.length) for s in strips] == [
            (0, 128),
            (128, 128),
            (256, 44),
        ]

    def test_shorter_than_register(self):
        strips = strip_bounds(50, 128)
        assert [(s.offset, s.length) for s in strips] == [(0, 50)]

    def test_bad_arguments(self):
        with pytest.raises(ProgramError):
            strip_bounds(0, 128)
        with pytest.raises(ProgramError):
            strip_bounds(10, 0)

    def test_cover_exactly(self):
        for total in (1, 127, 128, 129, 1000):
            strips = strip_bounds(total, 128)
            assert sum(s.length for s in strips) == total
            assert strips[0].offset == 0
            for a, b in zip(strips, strips[1:]):
                assert b.offset == a.offset + a.length


class TestFullStripFraction:
    def test_paper_assumption_for_long_vectors(self):
        """Long vectors spend almost all elements in full strips."""
        assert full_strip_fraction(10000, 128) > 0.98

    def test_exact_multiple_is_one(self):
        assert full_strip_fraction(512, 128) == 1.0

    def test_short_vector_is_zero(self):
        assert full_strip_fraction(100, 128) == 0.0


class TestGeneratedPrograms:
    def test_daxpy_end_to_end(self):
        machine = DecoupledVectorMachine(
            MemoryConfig.matched(t=3, s=4), register_length=128
        )
        n = 300
        xs = [float(i % 17) for i in range(n)]
        ys = [float(i % 5) for i in range(n)]
        machine.store.write_vector(0, 3, xs)
        machine.store.write_vector(100000, 1, ys)
        program = daxpy_program(n, 128, 1.5, 0, 3, 100000, 1)
        machine.run(program)
        out = machine.store.read_vector(100000, 1, n)
        assert out == [1.5 * x + y for x, y in zip(xs, ys)]

    def test_daxpy_strip_count(self):
        program = daxpy_program(300, 128, 1.0, 0, 1, 10**6, 1)
        # 3 strips x 5 instructions.
        assert len(program) == 15

    def test_elementwise_product(self):
        machine = DecoupledVectorMachine(
            MemoryConfig.matched(t=3, s=4), register_length=128
        )
        n = 200
        machine.store.write_vector(0, 1, [2.0] * n)
        machine.store.write_vector(50000, 2, [3.0] * n)
        program = elementwise_product_program(
            n, 128, 0, 1, 50000, 2, 200000, 1
        )
        machine.run(program)
        assert machine.store.read_vector(200000, 1, n) == [6.0] * n


class TestNewKernelBuilders:
    def test_saxpy_chain_moves_data(self):
        from repro.processor.stripmine import saxpy_chain_program

        machine = DecoupledVectorMachine(
            MemoryConfig.matched(t=3, s=4), register_length=64
        )
        n = 150  # 64 + 64 + 22: exercises the remainder strip
        machine.store.write_vector(0, 1, [float(i) for i in range(n)])
        program = saxpy_chain_program(n, 64, 2.5, 0, 1, 50000, 1)
        assert len(program) == 9  # 3 strips x 3 instructions
        machine.run(program)
        assert machine.store.read_vector(50000, 1, n) == [
            2.5 * i for i in range(n)
        ]

    def test_load_store_copy_moves_data(self):
        from repro.processor.stripmine import load_store_copy_program

        machine = DecoupledVectorMachine(
            MemoryConfig.matched(t=3, s=4), register_length=64
        )
        values = [float(7 * i) for i in range(100)]
        machine.store.write_vector(0, 3, values)
        program = load_store_copy_program(100, 64, 0, 3, 60000, 1)
        machine.run(program)
        assert machine.store.read_vector(60000, 1, 100) == values

    def test_fft_butterfly_computes_stage(self):
        from repro.processor.stripmine import fft_butterfly_program

        machine = DecoupledVectorMachine(
            MemoryConfig.matched(t=3, s=4), register_length=8
        )
        n, stage = 32, 1
        data = [float(i + 1) for i in range(n)]
        machine.store.write_vector(0, 1, data)
        machine.run(fft_butterfly_program(n, stage, 8))
        half = 1 << stage
        out = machine.store.read_vector(0, 1, n)
        for top in range(n):
            if (top // half) % 2 == 0:
                bottom = top + half
                assert out[top] == data[top] + data[bottom]
                assert out[bottom] == data[top] - data[bottom]

    def test_fft_butterfly_rejects_bad_shapes(self):
        from repro.processor.stripmine import fft_butterfly_program

        with pytest.raises(ProgramError):
            fft_butterfly_program(24, 0, 8)  # not a power of two
        with pytest.raises(ProgramError):
            fft_butterfly_program(16, 4, 8)  # stage out of range


class TestReductionAndIndexedBuilders:
    """The vsum / gather / scatter program builders (ROADMAP items)."""

    def make_machine(self, register_length=16):
        return DecoupledVectorMachine(
            MemoryConfig.matched(t=3, s=4, input_capacity=2),
            register_length=register_length,
        )

    def test_vsum_reduces_across_strips(self):
        from repro.processor.stripmine import vsum_program

        machine = self.make_machine()
        values = [float(i) for i in range(50)]
        machine.store.write_vector(0, 3, values)
        machine.run(vsum_program(50, 16, 0, 3, 90000))
        assert machine.store.read_vector(90000, 1, 1) == [sum(values)]

    def test_vsum_single_strip(self):
        from repro.processor.stripmine import vsum_program

        machine = self.make_machine()
        machine.store.write_vector(0, 1, [2.0] * 8)
        machine.run(vsum_program(8, 16, 0, 1, 90000))
        assert machine.store.read_vector(90000, 1, 1) == [16.0]

    def test_gather_permutes_through_table(self):
        from repro.processor.stripmine import gather_program

        machine = self.make_machine()
        indices = [5, 3, 0, 7, 1, 6, 2, 4, 9, 8, 11, 10, 13, 12, 15, 14,
                   17, 16]
        table = [float(10 + i) for i in range(18)]
        machine.store.write_vector(0, 1, [float(i) for i in indices])
        machine.store.write_vector(4096, 1, table)
        machine.run(gather_program(18, 16, 4096, 0, 1, 90000, 1))
        assert machine.store.read_vector(90000, 1, 18) == [
            table[i] for i in indices
        ]

    def test_scatter_writes_through_indices(self):
        from repro.processor.stripmine import scatter_program

        machine = self.make_machine()
        indices = [3, 1, 4, 0, 2, 5, 7, 6, 10, 8, 9, 12, 11, 14, 13, 15,
                   16, 17]
        values = [float(i) for i in range(18)]
        machine.store.write_vector(0, 1, [float(i) for i in indices])
        machine.store.write_vector(4096, 1, values)
        machine.run(scatter_program(18, 16, 90000, 0, 1, 4096, 1))
        out = machine.store.read_vector(90000, 1, 18)
        for position, index in enumerate(indices):
            assert out[index] == values[position]

    def test_builders_validate_lengths(self):
        from repro.processor.stripmine import gather_program, vsum_program

        with pytest.raises(ProgramError):
            vsum_program(0, 16, 0, 1, 90000)
        with pytest.raises(ProgramError):
            gather_program(8, 0, 4096, 0, 1, 90000, 1)
