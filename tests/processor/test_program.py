"""Tests for program validation and the assembler."""

from __future__ import annotations

import pytest

from repro.errors import ProgramError
from repro.processor.isa import VAdd, VLoad, VScale, VStore
from repro.processor.program import Program, assemble, disassemble


class TestValidation:
    def test_valid_program(self):
        program = Program([VLoad(1, 0, 1), VScale(2, 1, 2.0), VStore(2, 0, 1)])
        program.validate(register_count=4)

    def test_register_out_of_range(self):
        program = Program([VLoad(9, 0, 1)])
        with pytest.raises(ProgramError):
            program.validate(register_count=4)

    def test_use_before_def(self):
        program = Program([VAdd(2, 0, 1)])
        with pytest.raises(ProgramError):
            program.validate(register_count=4)

    def test_memory_instruction_count(self):
        program = Program([VLoad(1, 0, 1), VScale(2, 1, 2.0), VStore(2, 0, 1)])
        assert program.memory_instruction_count() == 2

    def test_len_and_iter(self):
        program = Program([VLoad(1, 0, 1)])
        assert len(program) == 1
        assert list(program) == [VLoad(1, 0, 1)]


class TestAssembler:
    def test_basic_program(self):
        program = assemble(
            """
            # daxpy-ish
            vload  v1, base=100, stride=3
            vload  v2, base=4096, stride=1
            vscale v3, v1, scalar=2.5
            vadd   v4, v3, v2
            vstore v4, base=8192, stride=1
            """
        )
        assert len(program) == 5
        assert program.instructions[0] == VLoad(1, 100, 3)
        assert program.instructions[2] == VScale(3, 1, 2.5)
        assert program.instructions[4] == VStore(4, 8192, 1)

    def test_length_keyword(self):
        program = assemble("vload v1, base=0, stride=2, length=20")
        assert program.instructions[0] == VLoad(1, 0, 2, 20)

    def test_unknown_mnemonic(self):
        with pytest.raises(ProgramError):
            assemble("vxyz v1, v2, v3")

    def test_bad_register_token(self):
        with pytest.raises(ProgramError):
            assemble("vadd w1, v2, v3")

    def test_missing_scalar(self):
        with pytest.raises(ProgramError):
            assemble("vscale v1, v2, factor=2")

    def test_bad_numeric(self):
        with pytest.raises(ProgramError):
            assemble("vload v1, base=abc, stride=1")

    def test_missing_operands(self):
        with pytest.raises(ProgramError):
            assemble("vload v1, base=0")
        with pytest.raises(ProgramError):
            assemble("vadd v1, v2")

    def test_comments_and_blanks_ignored(self):
        program = assemble("\n# nothing\n\nvload v1, base=0, stride=1\n")
        assert len(program) == 1


class TestRoundTrip:
    def test_assemble_disassemble_assemble(self):
        source = "\n".join(
            [
                "vload v1, base=100, stride=3",
                "vload v2, base=4096, stride=1, length=20",
                "vscale v3, v1, scalar=2.5",
                "vadd v4, v3, v2",
                "vsub v5, v4, v2",
                "vmul v6, v5, v5",
                "vsadd v7, v6, scalar=1.0",
                "vstore v7, base=8192, stride=1",
            ]
        )
        first = assemble(source)
        text = disassemble(first)
        second = assemble(text)
        assert first.instructions == second.instructions
