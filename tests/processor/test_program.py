"""Tests for program validation and the assembler."""

from __future__ import annotations

import pytest

from repro.errors import ProgramError
from repro.processor.isa import VAdd, VLoad, VScale, VStore
from repro.processor.program import Program, assemble, disassemble


class TestValidation:
    def test_valid_program(self):
        program = Program([VLoad(1, 0, 1), VScale(2, 1, 2.0), VStore(2, 0, 1)])
        program.validate(register_count=4)

    def test_register_out_of_range(self):
        program = Program([VLoad(9, 0, 1)])
        with pytest.raises(ProgramError):
            program.validate(register_count=4)

    def test_use_before_def(self):
        program = Program([VAdd(2, 0, 1)])
        with pytest.raises(ProgramError):
            program.validate(register_count=4)

    def test_memory_instruction_count(self):
        program = Program([VLoad(1, 0, 1), VScale(2, 1, 2.0), VStore(2, 0, 1)])
        assert program.memory_instruction_count() == 2

    def test_len_and_iter(self):
        program = Program([VLoad(1, 0, 1)])
        assert len(program) == 1
        assert list(program) == [VLoad(1, 0, 1)]


class TestAssembler:
    def test_basic_program(self):
        program = assemble(
            """
            # daxpy-ish
            vload  v1, base=100, stride=3
            vload  v2, base=4096, stride=1
            vscale v3, v1, scalar=2.5
            vadd   v4, v3, v2
            vstore v4, base=8192, stride=1
            """
        )
        assert len(program) == 5
        assert program.instructions[0] == VLoad(1, 100, 3)
        assert program.instructions[2] == VScale(3, 1, 2.5)
        assert program.instructions[4] == VStore(4, 8192, 1)

    def test_length_keyword(self):
        program = assemble("vload v1, base=0, stride=2, length=20")
        assert program.instructions[0] == VLoad(1, 0, 2, 20)

    def test_unknown_mnemonic(self):
        with pytest.raises(ProgramError):
            assemble("vxyz v1, v2, v3")

    def test_bad_register_token(self):
        with pytest.raises(ProgramError):
            assemble("vadd w1, v2, v3")

    def test_missing_scalar(self):
        with pytest.raises(ProgramError):
            assemble("vscale v1, v2, factor=2")

    def test_bad_numeric(self):
        with pytest.raises(ProgramError):
            assemble("vload v1, base=abc, stride=1")

    def test_missing_operands(self):
        with pytest.raises(ProgramError):
            assemble("vload v1, base=0")
        with pytest.raises(ProgramError):
            assemble("vadd v1, v2")

    def test_comments_and_blanks_ignored(self):
        program = assemble("\n# nothing\n\nvload v1, base=0, stride=1\n")
        assert len(program) == 1


class TestRoundTrip:
    def test_assemble_disassemble_assemble(self):
        source = "\n".join(
            [
                "vload v1, base=100, stride=3",
                "vload v2, base=4096, stride=1, length=20",
                "vscale v3, v1, scalar=2.5",
                "vadd v4, v3, v2",
                "vsub v5, v4, v2",
                "vmul v6, v5, v5",
                "vsadd v7, v6, scalar=1.0",
                "vstore v7, base=8192, stride=1",
            ]
        )
        first = assemble(source)
        text = disassemble(first)
        second = assemble(text)
        assert first.instructions == second.instructions


class TestAssemblerErrorLocation:
    """Every parse failure names the offending line and source text."""

    def test_missing_operand_reports_line_and_source(self):
        source = "vload v1, base=0, stride=4\nvload v2, stride=1, length=4"
        with pytest.raises(ProgramError) as excinfo:
            assemble(source)
        error = excinfo.value
        assert error.line_number == 2
        assert error.source_line == "vload v2, stride=1, length=4"
        assert "line 2" in str(error)
        assert "vload v2, stride=1, length=4" in str(error)
        assert "base=<value>" in str(error)

    def test_unknown_mnemonic_is_located(self):
        with pytest.raises(ProgramError) as excinfo:
            assemble("# comment\n\nvwarp v1, v2, v3")
        assert excinfo.value.line_number == 3
        assert "vwarp" in str(excinfo.value)

    def test_instruction_constructor_errors_are_located(self):
        # stride 0 is rejected by VLoad itself; the location must not be
        # lost on the re-raise.
        with pytest.raises(ProgramError) as excinfo:
            assemble("vload v1, base=0, stride=0")
        assert excinfo.value.line_number == 1
        assert excinfo.value.source_line == "vload v1, base=0, stride=0"

    def test_bad_register_token_is_located(self):
        with pytest.raises(ProgramError) as excinfo:
            assemble("vadd r1, v2, v3")
        assert excinfo.value.line_number == 1
        assert "r1" in str(excinfo.value)

    def test_hand_built_program_errors_carry_no_location(self):
        program = Program([VAdd(1, 2, 3)])
        with pytest.raises(ProgramError) as excinfo:
            program.validate(8)
        assert excinfo.value.line_number is None
        assert excinfo.value.source_line is None


class TestParseSource:
    def test_directives_become_memory_inits(self):
        from repro.processor.program import parse_source

        program, inits = parse_source(
            ".init base=0, stride=2, values=1;2;3\n"
            "vload v1, base=0, stride=2, length=3\n"
            ".fill base=100, stride=1, count=4, value=7.5\n"
        )
        assert len(program) == 1
        assert inits == ((0, 2, (1.0, 2.0, 3.0)), (100, 1, (7.5,) * 4))

    def test_directive_errors_are_located(self):
        from repro.processor.program import parse_source

        with pytest.raises(ProgramError) as excinfo:
            parse_source("vadd v1, v1, v1\n.init base=0, stride=2")
        assert excinfo.value.line_number == 2
        assert "values" in str(excinfo.value)

    def test_unknown_directive_rejected(self):
        from repro.processor.program import parse_source

        with pytest.raises(ProgramError, match="unknown directive"):
            parse_source(".warp base=0")

    def test_assemble_rejects_directives(self):
        with pytest.raises(ProgramError, match="not allowed"):
            assemble(".init base=0, stride=1, values=1")
