"""Machine-level tests for gather/scatter and the VSum reduction."""

from __future__ import annotations

import random

from repro.memory.config import MemoryConfig
from repro.processor.decoupled import DecoupledVectorMachine
from repro.processor.isa import VGather, VLoad, VScatter, VStore, VSum
from repro.processor.program import Program, assemble, disassemble


def make_machine(**kwargs) -> DecoupledVectorMachine:
    defaults = dict(
        config=MemoryConfig.matched(t=3, s=4, input_capacity=2),
        register_length=128,
    )
    defaults.update(kwargs)
    return DecoupledVectorMachine(**defaults)


class TestGatherValues:
    def test_gather_reads_by_index(self):
        machine = make_machine()
        table = [float(i) * 3.0 for i in range(256)]
        machine.store.write_vector(0, 1, table)
        rng = random.Random(5)
        indices = [float(rng.randrange(256)) for _ in range(128)]
        machine.store.write_vector(10000, 1, indices)
        machine.run(
            Program(
                [
                    VLoad(1, 10000, 1),
                    VGather(2, 0, 1),
                    VStore(2, 20000, 1),
                ]
            )
        )
        out = machine.store.read_vector(20000, 1, 128)
        assert out == [table[int(i)] for i in indices]

    def test_scatter_writes_by_index(self):
        machine = make_machine()
        # Distinct indices so the scatter is well-defined.
        rng = random.Random(6)
        index_values = list(range(128))
        rng.shuffle(index_values)
        machine.store.write_vector(10000, 1, [float(i) for i in index_values])
        machine.store.write_vector(30000, 1, [float(i) for i in range(128)])
        machine.run(
            Program(
                [
                    VLoad(1, 10000, 1),
                    VLoad(2, 30000, 1),
                    VScatter(2, 50000, 1),
                ]
            )
        )
        for position, target in enumerate(index_values):
            assert machine.store.read(50000 + target) == float(position)


class TestGatherTiming:
    def test_scheduled_gather_of_permutation_is_conflict_free(self):
        machine = make_machine(gather_mode="scheduled")
        machine.store.write_vector(0, 1, [1.0] * 128)
        rng = random.Random(11)
        indices = list(range(128))
        rng.shuffle(indices)
        machine.store.write_vector(10000, 1, [float(i) for i in indices])
        result = machine.run(
            Program([VLoad(1, 10000, 1), VGather(2, 0, 1)])
        )
        gather_timing = result.timings[1]
        assert gather_timing.mode == "scheduled"
        assert gather_timing.conflict_free
        assert gather_timing.duration == 8 + 128 + 1

    def test_ordered_gather_slower(self):
        rng = random.Random(11)
        indices = list(range(128))
        rng.shuffle(indices)
        durations = {}
        for mode in ("ordered", "scheduled"):
            machine = make_machine(gather_mode=mode)
            machine.store.write_vector(0, 1, [1.0] * 128)
            machine.store.write_vector(
                10000, 1, [float(i) for i in indices]
            )
            result = machine.run(
                Program([VLoad(1, 10000, 1), VGather(2, 0, 1)])
            )
            durations[mode] = result.timings[1].duration
        assert durations["scheduled"] < durations["ordered"]

    def test_gather_waits_for_index_register(self):
        machine = make_machine()
        machine.store.write_vector(0, 1, [1.0] * 128)
        machine.store.write_vector(10000, 1, [float(i) for i in range(128)])
        result = machine.run(Program([VLoad(1, 10000, 1), VGather(2, 0, 1)]))
        load, gather = result.timings
        assert gather.start_cycle >= load.end_cycle + 1


class TestVSum:
    def test_reduction_value_broadcast(self):
        machine = make_machine()
        machine.store.write_vector(0, 1, [float(i) for i in range(128)])
        machine.run(
            Program([VLoad(1, 0, 1), VSum(2, 1), VStore(2, 5000, 1)])
        )
        expected = float(sum(range(128)))
        assert machine.store.read_vector(5000, 1, 128) == [expected] * 128

    def test_reduction_timing_is_linear(self):
        machine = make_machine()
        machine.store.write_vector(0, 1, [1.0] * 128)
        result = machine.run(Program([VLoad(1, 0, 1), VSum(2, 1)]))
        reduction = result.timings[1]
        assert reduction.unit == "execute"
        assert reduction.duration >= 128


class TestAssemblerSupport:
    def test_round_trip(self):
        source = "\n".join(
            [
                "vload v1, base=0, stride=1",
                "vgather v2, v1, base=100",
                "vsum v3, v2",
                "vscatter v3, v1, base=200, length=64",
            ]
        )
        program = assemble(source)
        assert program.instructions[1] == VGather(2, 100, 1)
        assert program.instructions[2] == VSum(3, 2)
        assert program.instructions[3] == VScatter(3, 200, 1, 64)
        assert assemble(disassemble(program)).instructions == (
            program.instructions
        )
