"""Tests for the vector ISA dataclasses."""

from __future__ import annotations

import pytest

from repro.errors import ProgramError
from repro.processor.isa import (
    VAdd,
    VLoad,
    VMul,
    VSAdd,
    VScale,
    VStore,
    VSub,
)


class TestLoadStore:
    def test_vload_registers(self):
        instruction = VLoad(3, base=0, stride=4)
        assert instruction.writes() == (3,)
        assert instruction.reads() == ()
        assert instruction.is_memory

    def test_vstore_registers(self):
        instruction = VStore(2, base=0, stride=1)
        assert instruction.reads() == (2,)
        assert instruction.writes() == ()
        assert instruction.is_memory

    def test_zero_stride_rejected(self):
        with pytest.raises(ProgramError):
            VLoad(0, base=0, stride=0)
        with pytest.raises(ProgramError):
            VStore(0, base=0, stride=0)

    def test_bad_length_rejected(self):
        with pytest.raises(ProgramError):
            VLoad(0, base=0, stride=1, length=0)

    def test_mnemonics(self):
        assert VLoad(0, 0, 1).mnemonic == "LOAD"
        assert VStore(0, 0, 1).mnemonic == "STORE"


class TestArithmetic:
    def test_binary_registers(self):
        instruction = VAdd(2, 0, 1)
        assert instruction.reads() == (0, 1)
        assert instruction.writes() == (2,)
        assert not instruction.is_memory

    def test_apply_semantics(self):
        assert VAdd(0, 0, 0).apply(2.0, 3.0) == 5.0
        assert VSub(0, 0, 0).apply(2.0, 3.0) == -1.0
        assert VMul(0, 0, 0).apply(2.0, 3.0) == 6.0

    def test_scalar_ops(self):
        assert VScale(0, 1, 2.5).apply(4.0) == 10.0
        assert VSAdd(0, 1, 2.5).apply(4.0) == 6.5
        assert VScale(0, 1, 2.5).reads() == (1,)
        assert VScale(0, 1, 2.5).writes() == (0,)
