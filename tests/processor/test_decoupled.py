"""Tests for the decoupled access/execute machine."""

from __future__ import annotations

import pytest

from repro.errors import ProgramError
from repro.memory.config import MemoryConfig
from repro.processor.decoupled import DecoupledVectorMachine
from repro.processor.isa import VAdd, VLoad, VScale, VStore
from repro.processor.program import Program


def make_machine(**kwargs) -> DecoupledVectorMachine:
    defaults = dict(
        config=MemoryConfig.matched(t=3, s=4),
        register_length=128,
    )
    defaults.update(kwargs)
    return DecoupledVectorMachine(**defaults)


class TestDataMovement:
    def test_load_store_roundtrip(self):
        machine = make_machine()
        values = [float(i) * 0.5 for i in range(128)]
        machine.store.write_vector(0, 12, values)
        machine.run(
            Program([VLoad(1, 0, 12), VStore(1, 100000, 1)])
        )
        assert machine.store.read_vector(100000, 1, 128) == values

    def test_daxpy_values(self):
        machine = make_machine()
        xs = [float(i) for i in range(128)]
        ys = [100.0 + i for i in range(128)]
        machine.store.write_vector(0, 3, xs)
        machine.store.write_vector(50000, 1, ys)
        machine.run(
            Program(
                [
                    VLoad(1, 0, 3),
                    VLoad(2, 50000, 1),
                    VScale(3, 1, 2.0),
                    VAdd(4, 3, 2),
                    VStore(4, 50000, 1),
                ]
            )
        )
        result = machine.store.read_vector(50000, 1, 128)
        assert result == [2.0 * x + y for x, y in zip(xs, ys)]

    def test_partial_length(self):
        machine = make_machine()
        machine.store.write_vector(0, 1, [1.0] * 40)
        machine.run(
            Program([VLoad(1, 0, 1, 40), VScale(2, 1, 3.0, 40),
                     VStore(2, 5000, 1, 40)])
        )
        assert machine.store.read_vector(5000, 1, 40) == [3.0] * 40

    def test_length_exceeding_register_rejected(self):
        machine = make_machine()
        machine.store.write_vector(0, 1, [0.0] * 200)
        with pytest.raises(ProgramError):
            machine.run(Program([VLoad(1, 0, 1, 200)]))


class TestTiming:
    def test_conflict_free_load_duration(self):
        machine = make_machine()
        machine.store.write_vector(0, 12, [0.0] * 128)
        result = machine.run(Program([VLoad(1, 0, 12)]))
        timing = result.timings[0]
        assert timing.duration == 8 + 128 + 1
        assert timing.conflict_free
        assert timing.mode == "conflict_free"

    def test_out_of_window_load_slower(self):
        machine = make_machine()
        machine.store.write_vector(0, 1 << 6, [0.0] * 128)
        result = machine.run(Program([VLoad(1, 0, 1 << 6)]))
        timing = result.timings[0]
        assert timing.duration > 137
        assert not timing.conflict_free

    def test_execute_waits_for_register(self):
        machine = make_machine()
        machine.store.write_vector(0, 12, [1.0] * 128)
        result = machine.run(Program([VLoad(1, 0, 12), VScale(2, 1, 2.0)]))
        load, scale = result.timings
        assert scale.start_cycle == load.end_cycle + 1
        assert scale.mode == "decoupled"

    def test_memory_unit_serialises_accesses(self):
        machine = make_machine()
        machine.store.write_vector(0, 12, [1.0] * 128)
        machine.store.write_vector(10000, 1, [1.0] * 128)
        result = machine.run(
            Program([VLoad(1, 0, 12), VLoad(2, 10000, 1)])
        )
        first, second = result.timings
        assert second.start_cycle == first.end_cycle + 1

    def test_store_waits_for_source_register(self):
        machine = make_machine()
        machine.store.write_vector(0, 12, [1.0] * 128)
        result = machine.run(
            Program([VLoad(1, 0, 12), VStore(1, 90000, 1)])
        )
        load, store = result.timings
        assert store.start_cycle >= load.end_cycle + 1


class TestChaining:
    def test_chained_faster_than_decoupled(self):
        program = Program([VLoad(1, 0, 12), VScale(2, 1, 2.0)])
        results = {}
        for chaining in (False, True):
            machine = make_machine(chaining=chaining)
            machine.store.write_vector(0, 12, [1.0] * 128)
            results[chaining] = machine.run(program).total_cycles
        assert results[True] < results[False]
        # Chaining hides nearly the whole execute: the chained total is
        # within startup+2 of the bare load latency.
        assert results[True] <= 137 + 4 + 2

    def test_chained_mode_recorded(self):
        machine = make_machine(chaining=True)
        machine.store.write_vector(0, 12, [1.0] * 128)
        result = machine.run(Program([VLoad(1, 0, 12), VScale(2, 1, 2.0)]))
        assert result.timings[1].mode == "chained"
        assert result.chained_count() == 1

    def test_no_chaining_on_conflicting_load(self):
        """Section 5-F: only deterministic (conflict-free) loads chain."""
        machine = make_machine(chaining=True)
        machine.store.write_vector(0, 1 << 6, [1.0] * 128)
        result = machine.run(
            Program([VLoad(1, 0, 1 << 6), VScale(2, 1, 2.0)])
        )
        assert result.timings[1].mode == "decoupled"

    def test_chained_values_still_correct(self):
        machine = make_machine(chaining=True)
        xs = [float(i) for i in range(128)]
        machine.store.write_vector(0, 12, xs)
        machine.run(
            Program([VLoad(1, 0, 12), VScale(2, 1, 3.0), VStore(2, 70000, 1)])
        )
        assert machine.store.read_vector(70000, 1, 128) == [3.0 * x for x in xs]


class TestConstruction:
    def test_bad_register_length(self):
        with pytest.raises(ProgramError):
            make_machine(register_length=0)

    def test_bad_startup(self):
        with pytest.raises(ProgramError):
            make_machine(execute_startup=0)

    def test_program_validated(self):
        machine = make_machine()
        with pytest.raises(ProgramError):
            machine.run(Program([VAdd(1, 2, 3)]))


class TestResultAccounting:
    def test_summary_counts(self):
        machine = make_machine()
        machine.store.write_vector(0, 12, [1.0] * 128)
        machine.store.write_vector(30000, 1, [1.0] * 128)
        result = machine.run(
            Program(
                [
                    VLoad(1, 0, 12),
                    VLoad(2, 30000, 1),
                    VAdd(3, 1, 2),
                    VStore(3, 30000, 1),
                ]
            )
        )
        assert len(result.memory_timings()) == 3
        assert result.conflict_free_loads() == 3
        assert result.total_cycles == max(t.end_cycle for t in result.timings)
