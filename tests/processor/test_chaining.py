"""Tests for the closed-form chaining model against the machine."""

from __future__ import annotations

import pytest

from repro.errors import ProgramError
from repro.memory.config import MemoryConfig
from repro.processor.chaining import (
    chained_pair_latency,
    chaining_speedup,
    conflict_free_load_latency,
    decoupled_pair_latency,
)
from repro.processor.decoupled import DecoupledVectorMachine
from repro.processor.isa import VLoad, VScale
from repro.processor.program import Program


class TestClosedForms:
    def test_load_latency(self):
        assert conflict_free_load_latency(128, 8) == 137

    def test_decoupled_pair(self):
        assert decoupled_pair_latency(128, 8, 4) == 137 + 4 + 128

    def test_chained_pair(self):
        assert chained_pair_latency(128, 8, 4) == 137 + 1 + 4

    def test_speedup_grows_with_length(self):
        short = chaining_speedup(16, 8, 4)
        long = chaining_speedup(1024, 8, 4)
        assert long > short
        assert long < 2.0

    def test_invalid_arguments(self):
        with pytest.raises(ProgramError):
            conflict_free_load_latency(0, 8)


class TestModelMatchesMachine:
    @pytest.mark.parametrize("length", [32, 64, 128])
    def test_decoupled(self, length):
        machine = DecoupledVectorMachine(
            MemoryConfig.matched(t=3, s=4),
            register_length=length,
            execute_startup=4,
            chaining=False,
        )
        machine.store.write_vector(0, 12, [1.0] * length)
        result = machine.run(Program([VLoad(1, 0, 12), VScale(2, 1, 2.0)]))
        assert result.total_cycles == decoupled_pair_latency(length, 8, 4)

    @pytest.mark.parametrize("length", [32, 64, 128])
    def test_chained(self, length):
        machine = DecoupledVectorMachine(
            MemoryConfig.matched(t=3, s=4),
            register_length=length,
            execute_startup=4,
            chaining=True,
        )
        machine.store.write_vector(0, 12, [1.0] * length)
        result = machine.run(Program([VLoad(1, 0, 12), VScale(2, 1, 2.0)]))
        assert result.total_cycles == chained_pair_latency(length, 8, 4)
