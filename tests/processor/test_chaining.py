"""Tests for the closed-form chaining model against the machine."""

from __future__ import annotations

import pytest

from repro.errors import ProgramError
from repro.memory.config import MemoryConfig
from repro.processor.chaining import (
    chained_pair_latency,
    chaining_speedup,
    conflict_free_load_latency,
    decoupled_pair_latency,
)
from repro.processor.decoupled import DecoupledVectorMachine
from repro.processor.isa import VLoad, VScale
from repro.processor.program import Program


class TestClosedForms:
    def test_load_latency(self):
        assert conflict_free_load_latency(128, 8) == 137

    def test_decoupled_pair(self):
        assert decoupled_pair_latency(128, 8, 4) == 137 + 4 + 128

    def test_chained_pair(self):
        assert chained_pair_latency(128, 8, 4) == 137 + 1 + 4

    def test_speedup_grows_with_length(self):
        short = chaining_speedup(16, 8, 4)
        long = chaining_speedup(1024, 8, 4)
        assert long > short
        assert long < 2.0

    def test_invalid_arguments(self):
        with pytest.raises(ProgramError):
            conflict_free_load_latency(0, 8)


class TestModelMatchesMachine:
    @pytest.mark.parametrize("length", [32, 64, 128])
    def test_decoupled(self, length):
        machine = DecoupledVectorMachine(
            MemoryConfig.matched(t=3, s=4),
            register_length=length,
            execute_startup=4,
            chaining=False,
        )
        machine.store.write_vector(0, 12, [1.0] * length)
        result = machine.run(Program([VLoad(1, 0, 12), VScale(2, 1, 2.0)]))
        assert result.total_cycles == decoupled_pair_latency(length, 8, 4)

    @pytest.mark.parametrize("length", [32, 64, 128])
    def test_chained(self, length):
        machine = DecoupledVectorMachine(
            MemoryConfig.matched(t=3, s=4),
            register_length=length,
            execute_startup=4,
            chaining=True,
        )
        machine.store.write_vector(0, 12, [1.0] * length)
        result = machine.run(Program([VLoad(1, 0, 12), VScale(2, 1, 2.0)]))
        assert result.total_cycles == chained_pair_latency(length, 8, 4)


class TestProgramModel:
    """The whole-program analytic model (generalised Section 5-F)."""

    def setup_method(self):
        from repro.core.vector import VectorAccess
        from repro.processor.engine import single_load_program

        self.pair = single_load_program(VectorAccess(0, 4, 64), chaining=True)

    def test_reduces_to_pair_formulas(self):
        from repro.processor.chaining import program_latency

        assert program_latency(self.pair, 64, 8, 4, chained=True) == (
            chained_pair_latency(64, 8, 4)
        )
        assert program_latency(self.pair, 64, 8, 4, chained=False) == (
            decoupled_pair_latency(64, 8, 4)
        )

    def test_pair_speedup_matches_closed_form(self):
        from repro.processor.chaining import program_chaining_speedup

        assert program_chaining_speedup(self.pair, 64, 8, 4) == pytest.approx(
            chaining_speedup(64, 8, 4)
        )

    @pytest.mark.parametrize("chained", [False, True])
    def test_matches_simulation_for_conflict_free_kernels(self, chained):
        from repro.memory.config import MemoryConfig
        from repro.processor.chaining import program_latency
        from repro.processor.engine import ProgramEngine
        from repro.processor.stripmine import (
            daxpy_program,
            saxpy_chain_program,
        )

        config = MemoryConfig.matched(t=3, s=4, input_capacity=2)
        n = 160  # 64 + 64 + 32: full strips and a conflict-free tail
        x = tuple(float(i) for i in range(n))
        y = tuple(float(3 * i) for i in range(n))
        cases = [
            (daxpy_program(n, 64, 2.0, 0, 4, 8192, 4),
             ((0, 4, x), (8192, 4, y))),
            (saxpy_chain_program(n, 64, 3.0, 0, 4, 8192, 4), ((0, 4, x),)),
        ]
        for program, inputs in cases:
            engine = ProgramEngine(config, 64, chaining=chained)
            run = engine.run(program, inputs)
            assert run.conflict_free_loads == sum(
                1 for row in run.timeline if row[2] == "memory" and row[7]
            )
            model = program_latency(
                program, 64, config.service_ratio, 4, chained=chained
            )
            assert run.total_cycles == model

    def test_empty_program_has_unit_speedup(self):
        from repro.processor.chaining import program_chaining_speedup
        from repro.processor.program import Program

        assert program_chaining_speedup(Program(), 64, 8, 4) == 1.0
