"""Concurrent in-flight memory instructions on the decoupled machine.

The access unit sustains one in-flight memory instruction per memory
port (overridable via ``memory_streams``).  These tests pin the three
contracts: the default single-port machine keeps the paper's serial
per-access timing; hazard-free accesses overlap when streams exist;
hazards, address overlap and operand readiness always close a batch, so
results stay numerically correct.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.memory.config import MemoryConfig
from repro.processor.decoupled import DecoupledVectorMachine
from repro.processor.engine import TIMELINE_FIELDS, ProgramEngine
from repro.processor.isa import VAdd, VLoad, VStore
from repro.processor.program import Program
from repro.processor.stripmine import daxpy_program


def make_machine(ports=1, memory_streams=None, chaining=False):
    config = MemoryConfig.unmatched(
        t=3, s=4, y=9, input_capacity=2, ports=ports
    )
    return DecoupledVectorMachine(
        config,
        register_length=64,
        chaining=chaining,
        memory_streams=memory_streams,
    )


def two_load_program():
    return Program([VLoad(1, 0, 4, 64), VLoad(2, 4096, 4, 64)])


class TestSerialDefault:
    def test_single_port_serialises_accesses(self):
        """ports=1 (the seed machine) keeps the legacy serial timing."""
        machine = make_machine(ports=1)
        machine.store.write_vector(0, 4, [1.0] * 64)
        machine.store.write_vector(4096, 4, [2.0] * 64)
        result = machine.run(two_load_program())
        first, second = result.timings
        assert second.start_cycle == first.end_cycle + 1
        assert result.stream_concurrency_peak == 1

    def test_memory_streams_defaults_to_ports(self):
        assert make_machine(ports=1).memory_streams == 1
        assert make_machine(ports=2).memory_streams == 2
        assert make_machine(ports=1, memory_streams=3).memory_streams == 3

    def test_bad_memory_streams_rejected(self):
        with pytest.raises(ConfigurationError, match="'memory_streams'"):
            make_machine(memory_streams=0)


class TestConcurrentLoads:
    def test_two_ports_overlap_independent_loads(self):
        machine = make_machine(ports=2)
        machine.store.write_vector(0, 4, [1.0] * 64)
        machine.store.write_vector(4096, 4, [2.0] * 64)
        result = machine.run(two_load_program())
        first, second = result.timings
        assert first.start_cycle == second.start_cycle
        assert result.stream_concurrency_peak == 2
        assert {first.port, second.port} == {0, 1}
        assert (first.stream, second.stream) == (0, 1)

    def test_overlap_beats_serial_total(self):
        serial = make_machine(ports=1)
        concurrent = make_machine(ports=2)
        for machine in (serial, concurrent):
            machine.store.write_vector(0, 4, [1.0] * 64)
            machine.store.write_vector(4096, 4, [2.0] * 64)
        serial_total = serial.run(two_load_program()).total_cycles
        concurrent_total = concurrent.run(two_load_program()).total_cycles
        assert concurrent_total < serial_total

    def test_one_bus_two_streams_interleaves(self):
        """memory_streams > ports shares the single address bus."""
        machine = make_machine(ports=1, memory_streams=2)
        machine.store.write_vector(0, 4, [1.0] * 64)
        machine.store.write_vector(4096, 4, [2.0] * 64)
        result = machine.run(two_load_program())
        first, second = result.timings
        assert first.start_cycle == second.start_cycle
        # One request per cycle for 128 elements: both drain together,
        # slower than a lone access but faster than two serial ones.
        serial = make_machine(ports=1)
        serial.store.write_vector(0, 4, [1.0] * 64)
        serial.store.write_vector(4096, 4, [2.0] * 64)
        assert (
            result.total_cycles
            < serial.run(two_load_program()).total_cycles
        )


class TestHazardsCloseBatches:
    def test_store_after_load_same_register_serialises(self):
        machine = make_machine(ports=2)
        machine.store.write_vector(0, 4, [1.5] * 64)
        result = machine.run(
            Program([VLoad(1, 0, 4, 64), VStore(1, 8192, 1, 64)])
        )
        load, store = result.timings
        assert store.start_cycle > load.end_cycle
        assert machine.store.read_vector(8192, 1, 64) == [1.5] * 64

    def test_overlapping_store_does_not_batch(self):
        """A store into the span a concurrent load reads must wait."""
        machine = make_machine(ports=2)
        machine.store.write_vector(0, 1, [1.0] * 64)
        machine.store.write_vector(4096, 1, [9.0] * 64)
        result = machine.run(
            Program(
                [
                    VLoad(2, 4096, 1, 64),
                    # Store overlaps the *next* load's span (0..63):
                    VStore(2, 0, 1, 64),
                    VLoad(3, 32, 1, 32),
                ]
            )
        )
        store_timing = result.timings[1]
        load3 = result.timings[2]
        assert load3.start_cycle > store_timing.end_cycle
        # The load observes the stored values, not the preloaded ones.
        register = machine.registers.register(3)
        assert [register.read(i) for i in range(32)] == [9.0] * 32

    def test_dependent_execute_waits_for_batched_loads(self):
        machine = make_machine(ports=2)
        machine.store.write_vector(0, 4, [1.0] * 64)
        machine.store.write_vector(4096, 4, [2.0] * 64)
        result = machine.run(
            Program(
                [
                    VLoad(1, 0, 4, 64),
                    VLoad(2, 4096, 4, 64),
                    VAdd(3, 1, 2, 64),
                ]
            )
        )
        load_a, load_b, add = result.timings
        assert add.start_cycle > max(load_a.end_cycle, load_b.end_cycle)
        register = machine.registers.register(3)
        assert [register.read(i) for i in range(64)] == [3.0] * 64


class TestWholeKernels:
    @pytest.mark.parametrize("ports", [1, 2, 4])
    def test_daxpy_correct_at_any_port_count(self, ports):
        config = MemoryConfig.unmatched(
            t=3, s=4, y=9, input_capacity=2, ports=ports
        )
        engine = ProgramEngine(config, 64)
        n = 128
        x = tuple(float(i) for i in range(n))
        y = tuple(1.0 for _ in range(n))
        run = engine.run(
            daxpy_program(n, 64, 2.0, 0, 4, 4 * n, 4),
            inputs=((0, 4, x), (4 * n, 4, y)),
            expected=((4 * n, 4, tuple(2.0 * a + b for a, b in zip(x, y))),),
        )
        assert run.outputs_correct is True
        if ports == 1:
            assert run.stream_concurrency_peak == 1
        else:
            assert run.stream_concurrency_peak >= 2

    def test_more_ports_never_slower(self):
        totals = {}
        for ports in (1, 2):
            config = MemoryConfig.unmatched(
                t=3, s=4, y=9, input_capacity=2, ports=ports
            )
            engine = ProgramEngine(config, 64)
            n = 128
            run = engine.run(
                daxpy_program(n, 64, 2.0, 0, 4, 4 * n, 4),
                inputs=(
                    (0, 4, tuple(float(i) for i in range(n))),
                    (4 * n, 4, tuple(1.0 for _ in range(n))),
                ),
            )
            totals[ports] = run.total_cycles
        assert totals[2] < totals[1]


class TestTimelineOccupancy:
    def test_timeline_rows_carry_port_and_stream(self):
        assert TIMELINE_FIELDS[-2:] == ("port", "stream")
        config = MemoryConfig.unmatched(
            t=3, s=4, y=9, input_capacity=2, ports=2
        )
        engine = ProgramEngine(config, 64)
        run = engine.run(
            two_load_program(),
            inputs=((0, 4, (1.0,) * 64), (4096, 4, (2.0,) * 64)),
        )
        rows = [dict(zip(TIMELINE_FIELDS, row)) for row in run.timeline]
        memory_rows = [row for row in rows if row["unit"] == "memory"]
        assert {row["port"] for row in memory_rows} == {0, 1}
        assert {row["stream"] for row in memory_rows} == {0, 1}
