"""ProgramEngine tests: one execution API from instruction list to
timelines, memory runs, overlap accounting and correctness verdicts."""

from __future__ import annotations

import pytest

from repro.core.vector import VectorAccess
from repro.memory.config import MemoryConfig
from repro.processor.decoupled import DecoupledVectorMachine
from repro.processor.engine import (
    TIMELINE_FIELDS,
    ProgramEngine,
    single_load_program,
)
from repro.processor.isa import VAdd, VLoad
from repro.processor.program import Program
from repro.processor.stripmine import daxpy_program, saxpy_chain_program


def matched_config(q: int = 2) -> MemoryConfig:
    return MemoryConfig.matched(t=3, s=4, input_capacity=q)


def daxpy_case(n: int = 96, register_length: int = 64):
    program = daxpy_program(n, register_length, 2.0, 0, 4, 8192, 4)
    x = tuple(float(i) for i in range(n))
    y = tuple(float(2 * i + 1) for i in range(n))
    inputs = ((0, 4, x), (8192, 4, y))
    expected = ((8192, 4, tuple(2.0 * a + b for a, b in zip(x, y))),)
    return program, inputs, expected


class TestEngineRuns:
    def test_matches_direct_machine_execution(self):
        program, inputs, _ = daxpy_case()
        engine = ProgramEngine(matched_config(), 64, chaining=True)
        run = engine.run(program, inputs)

        machine = DecoupledVectorMachine(
            matched_config(), register_length=64, chaining=True
        )
        for base, stride, values in inputs:
            machine.store.write_vector(base, stride, values)
        direct = machine.run(program)
        assert run.total_cycles == direct.total_cycles
        assert run.result.timings == direct.timings

    def test_timeline_rows_match_schema(self):
        program, inputs, _ = daxpy_case()
        run = ProgramEngine(matched_config(), 64).run(program, inputs)
        assert len(run.timeline) == len(program)
        for row in run.timeline:
            assert len(row) == len(TIMELINE_FIELDS)
        # start/end ordering is coherent
        positions = [row[0] for row in run.timeline]
        assert positions == list(range(len(program)))
        assert all(row[3] <= row[4] for row in run.timeline)

    def test_memory_runs_pair_scheme_with_access_result(self):
        program, inputs, _ = daxpy_case()
        run = ProgramEngine(matched_config(), 64).run(program, inputs)
        assert len(run.memory_runs) == program.memory_instruction_count()
        for scheme, access in run.memory_runs:
            assert isinstance(scheme, str)
            assert access.element_count >= 1

    def test_fresh_machine_per_run(self):
        program, inputs, expected = daxpy_case()
        engine = ProgramEngine(matched_config(), 64, chaining=True)
        first = engine.run(program, inputs, expected)
        second = engine.run(program, inputs, expected)
        assert first.total_cycles == second.total_cycles
        assert first.machine is not second.machine
        assert second.outputs_correct


class TestCorrectness:
    def test_expected_outputs_verified(self):
        program, inputs, expected = daxpy_case()
        run = ProgramEngine(matched_config(), 64).run(program, inputs, expected)
        assert run.outputs_correct is True
        assert run.output_errors == ()

    def test_wrong_expectation_detected(self):
        program, inputs, _ = daxpy_case(n=8, register_length=8)
        bad = ((8192, 4, tuple(-1.0 for _ in range(8))),)
        run = ProgramEngine(matched_config(), 8).run(program, inputs, bad)
        assert run.outputs_correct is False
        assert run.output_errors

    def test_unwritten_expectation_is_an_error_not_a_crash(self):
        program, inputs, _ = daxpy_case(n=8, register_length=8)
        missing = ((1 << 20, 1, (0.0,)),)
        run = ProgramEngine(matched_config(), 8).run(program, inputs, missing)
        assert run.outputs_correct is False

    def test_no_expectation_means_no_verdict(self):
        program, inputs, _ = daxpy_case(n=8, register_length=8)
        run = ProgramEngine(matched_config(), 8).run(program, inputs)
        assert run.outputs_correct is None


class TestOverlapAndChaining:
    def test_single_load_has_no_overlap(self):
        vector = VectorAccess(0, 4, 64)
        program = single_load_program(vector, chaining=False)
        assert len(program) == 1
        run = ProgramEngine(matched_config(), 64).run(
            program, ((0, 4, tuple(float(i) for i in range(64))),)
        )
        assert run.overlap_fraction == 0.0

    def test_chained_kernel_overlaps(self):
        program, inputs, _ = daxpy_case()
        run = ProgramEngine(matched_config(), 64, chaining=True).run(
            program, inputs
        )
        assert run.chained_count > 0
        assert run.overlap_fraction > 0.0

    def test_measured_speedup_above_one_for_conflict_free_chain(self):
        program = saxpy_chain_program(128, 64, 3.0, 0, 4, 8192, 4)
        inputs = ((0, 4, tuple(float(i) for i in range(128))),)
        engine = ProgramEngine(matched_config(), 64, chaining=True)
        assert engine.measured_chaining_speedup(program, inputs) > 1.0

    def test_chaining_falls_back_when_not_conflict_free(self):
        # stride 1 is outside the matched t=3, s=4 window: loads are not
        # conflict-free, so chained and decoupled execution coincide.
        program = Program([VLoad(1, 0, 1, 64), VAdd(2, 1, 1, 64)])
        inputs = ((0, 1, tuple(float(i) for i in range(64))),)
        chained = ProgramEngine(matched_config(), 64, chaining=True).run(
            program, inputs
        )
        decoupled = ProgramEngine(matched_config(), 64, chaining=False).run(
            program, inputs
        )
        assert chained.conflict_free_loads == 0
        assert chained.chained_count == 0
        assert chained.total_cycles == decoupled.total_cycles


class TestSingleLoadProgram:
    @pytest.mark.parametrize("chaining", [False, True])
    def test_shape(self, chaining):
        program = single_load_program(VectorAccess(16, 12, 128), chaining)
        assert len(program) == (2 if chaining else 1)
        assert program.memory_instruction_count() == 1
