"""Spec lint (SL3xx), grid-axis lint (SL305) and dedupe (DD401)."""

from __future__ import annotations

import pytest

from repro.check.dedupe import dedupe_findings
from repro.check.lint import lint_grid_axes, lint_spec
from repro.errors import ConfigurationError
from repro.scenarios import (
    ComponentSpec,
    MemorySpec,
    ScenarioGrid,
    ScenarioSpec,
    validate_kind,
    validate_spec_kinds,
)


def spec(**overrides) -> ScenarioSpec:
    fields = dict(
        mapping=ComponentSpec.of("matched-xor", t=3, s=4),
        memory=MemorySpec(t=3),
        workload=ComponentSpec.of("strided", base=16, stride=12, length=128),
        name="lint-demo",
    )
    fields.update(overrides)
    return ScenarioSpec(**fields)


class TestValidateKind:
    def test_known_kind_passes(self):
        validate_kind("mapping", "matched-xor")

    def test_unknown_kind_lists_registry(self):
        with pytest.raises(ConfigurationError, match="registered:"):
            validate_kind("mapping", "warp")

    def test_close_misspelling_gets_a_hint(self):
        with pytest.raises(ConfigurationError, match="did you mean"):
            validate_kind("mapping", "matched-xo")

    def test_context_prefixes_the_message(self):
        with pytest.raises(ConfigurationError, match="scenario 'x': unknown"):
            validate_kind("mapping", "warp", context="scenario 'x'")

    def test_validate_spec_kinds_covers_every_component(self):
        bad = spec(workload=ComponentSpec.of("stridden", stride=1, length=8))
        with pytest.raises(ConfigurationError, match="unknown workload kind"):
            validate_spec_kinds(bad)


class TestLintSpec:
    def test_clean_spec_has_no_findings(self):
        assert lint_spec(spec(), location="here") == []

    def test_unknown_kind_is_sl301(self):
        [finding] = lint_spec(
            spec(mapping=ComponentSpec.of("warp", t=3)), location="here"
        )
        assert finding.rule_id == "SL301"
        assert finding.severity == "error"
        assert finding.location == "here.mapping"

    def test_unknown_parameter_is_sl302(self):
        [finding] = lint_spec(
            spec(mapping=ComponentSpec.of("matched-xor", t=3, s=4, warp=1)),
            location="here",
        )
        assert finding.rule_id == "SL302"
        assert "unknown parameter 'warp'" in finding.message

    def test_unknown_parameter_hints_at_unused_accepted_names(self):
        findings = lint_spec(
            spec(mapping=ComponentSpec.of("matched-xor", t=3, warp=1)),
            location="here",
        )
        unknown = next(f for f in findings if "unknown parameter" in f.message)
        assert "accepted:" in unknown.message and "'s'" not in unknown.message
        assert "s" in unknown.message.split("accepted:")[1]

    def test_missing_required_parameter_is_sl302(self):
        [finding] = lint_spec(
            spec(mapping=ComponentSpec.of("matched-xor", t=3)),
            location="here",
        )
        assert finding.rule_id == "SL302"
        assert "missing required parameter 's'" in finding.message

    def test_reserved_context_name_is_sl302(self):
        bad = spec(
            workload=None,
            program=ComponentSpec.of("daxpy", n=64, register_length=32),
            drive=ComponentSpec.of("decoupled"),
        )
        findings = lint_spec(bad, location="here")
        assert any(
            f.rule_id == "SL302" and "reserved context name" in f.message
            for f in findings
        )

    def test_program_with_non_decoupled_drive_is_sl306(self):
        bad = spec(
            workload=None,
            program=ComponentSpec.of("daxpy", n=64),
            drive=ComponentSpec.of("planner"),
        )
        findings = lint_spec(bad, location="here")
        assert [f.rule_id for f in findings] == ["SL306"]
        assert "decoupled" in findings[0].message


class TestLintGridAxes:
    def test_duplicate_axis_value_is_sl305(self):
        grid = ScenarioGrid.of(spec(), memory__q=(2, 2, 4))
        [finding] = lint_grid_axes(grid, location="grid.json")
        assert finding.rule_id == "SL305"
        assert finding.severity == "warn"
        assert "memory.q" in finding.location

    def test_distinct_axis_values_are_clean(self):
        grid = ScenarioGrid.of(spec(), memory__q=(1, 2, 4))
        assert lint_grid_axes(grid, location="grid.json") == []


class TestDedupe:
    def test_identical_points_up_to_name_are_dd401(self):
        pairs = [
            (spec(name="a"), "f:a"),
            (spec(name="b"), "f:b"),
            (spec(name="c", memory=MemorySpec(t=3, q=2)), "f:c"),
        ]
        [finding] = dedupe_findings(pairs)
        assert finding.rule_id == "DD401"
        assert finding.severity == "warn"
        assert finding.location == "f:a"
        assert "f:a, f:b" in finding.message

    def test_distinct_points_produce_nothing(self):
        pairs = [
            (spec(name="a"), "f:a"),
            (spec(name="b", memory=MemorySpec(t=3, q=2)), "f:b"),
        ]
        assert dedupe_findings(pairs) == []
