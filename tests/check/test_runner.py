"""The check pipeline: documents in, reports out; submit-time gates."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.check import (
    CheckError,
    check_document,
    check_path,
    require_submittable,
    submit_findings,
)
from repro.scenarios import ComponentSpec, MemorySpec, ScenarioGrid, ScenarioSpec

EXAMPLES = Path("examples")


def spec_dict(**overrides) -> dict:
    base = {
        "name": "runner-demo",
        "mapping": {"kind": "matched-xor", "params": {"t": 3, "s": 4}},
        "memory": {"t": 3},
        "workload": {
            "kind": "strided",
            "params": {"base": 16, "stride": 12, "length": 128},
        },
    }
    base.update(overrides)
    return base


def rules(report) -> list[str]:
    return [finding.rule_id for finding in report.findings]


class TestCheckDocument:
    def test_clean_spec_reports_cf101_only_infos(self):
        report = check_document(json.dumps(spec_dict()), source="s")
        assert report.exit_code == 0
        assert "CF101" in rules(report)
        assert "Theorem-1" in report.findings[0].message

    def test_locations_carry_source_and_name(self):
        report = check_document(json.dumps(spec_dict()), source="demo.json")
        assert report.findings[0].location.startswith(
            "demo.json:runner-demo"
        )

    def test_unparsable_json_is_sl304_not_a_raise(self):
        report = check_document("{not json", source="s")
        assert rules(report) == ["SL304"]
        assert report.exit_code == 1

    def test_unparsable_spec_is_sl304(self):
        report = check_document('{"memory": {"t": 3}}', source="s")
        assert rules(report) == ["SL304"]

    def test_build_failure_is_sl303(self):
        # Lint-clean (all kinds/params valid) but geometrically absurd:
        # a section-xor mapping whose y exceeds the address width.
        document = spec_dict(
            mapping={
                "kind": "section-xor",
                "params": {"t": 3, "s": 4, "y": 99},
            }
        )
        report = check_document(json.dumps(document), source="s")
        assert "SL303" in rules(report)
        assert report.exit_code == 1

    def test_lint_errors_suppress_deeper_passes(self):
        document = spec_dict(mapping={"kind": "warp", "params": {}})
        report = check_document(json.dumps(document), source="s")
        assert "SL301" in rules(report)
        assert "CF101" not in rules(report)
        assert "CF102" not in rules(report)

    def test_list_document_checks_every_entry(self):
        a = spec_dict(name="a")
        b = spec_dict(name="b", mapping={"kind": "warp", "params": {}})
        report = check_document(json.dumps([a, b]), source="s")
        assert "CF101" in rules(report)  # a still fully analyzed
        assert "SL301" in rules(report)  # b's error reported alongside
        assert report.exit_code == 1

    def test_grid_document_expands_and_dedupes(self):
        grid = ScenarioGrid.of(
            ScenarioSpec.from_dict(spec_dict()),
            memory__q=(1, 1),
        )
        report = check_document(grid.to_json(), source="g")
        assert "SL305" in rules(report)  # duplicate axis value
        assert "DD401" in rules(report)  # ...expands to identical points
        assert rules(report).count("CF101") == 2

    def test_program_spec_gets_hazard_findings(self):
        document = {
            "name": "prog",
            "mapping": {"kind": "matched-xor", "params": {"t": 3, "s": 4}},
            "memory": {"t": 3, "q": 2},
            "program": {"kind": "daxpy", "params": {"n": 96}},
            "drive": {"kind": "decoupled", "params": {"chaining": True}},
        }
        report = check_document(json.dumps(document), source="s")
        found = rules(report)
        assert "HZ201" in found and "HZ203" in found
        assert report.exit_code == 0


class TestCheckPath:
    @pytest.mark.parametrize(
        "path",
        sorted(
            path
            for path in EXAMPLES.glob("*.json")
            if path.name != "scenario_bad_stride.json"
        ),
        ids=lambda path: path.name,
    )
    def test_every_committed_example_is_clean(self, path):
        report = check_path(path)
        assert report.exit_code == 0, report.render()

    def test_bad_stride_example_fails_with_a_conflict_finding(self):
        report = check_path(EXAMPLES / "scenario_bad_stride.json")
        assert report.exit_code == 1
        [error] = report.errors
        assert error.rule_id == "CF104"
        assert "stride 96" in error.message


class TestSubmitGate:
    def good(self, name="a"):
        return ScenarioSpec.from_dict(spec_dict(name=name))

    def bad(self):
        return ScenarioSpec(
            mapping=ComponentSpec.of("matched-xor", t=3, s=4, warp=1),
            memory=MemorySpec(t=3),
            workload=ComponentSpec.of("strided", stride=12, length=128),
            name="bad",
        )

    def test_submit_findings_lints_without_building(self):
        findings = submit_findings([self.good(), self.bad()])
        assert [f.rule_id for f in findings] == ["SL302"]

    def test_require_submittable_passes_clean_specs(self):
        assert require_submittable([self.good()]) == []

    def test_require_submittable_returns_dedupe_warnings(self):
        warnings = require_submittable([self.good("a"), self.good("b")])
        assert [f.rule_id for f in warnings] == ["DD401"]

    def test_require_submittable_raises_check_error_with_findings(self):
        with pytest.raises(CheckError, match="static check error") as info:
            require_submittable([self.bad()], source="lab submit")
        assert info.value.findings[0].rule_id == "SL302"
        assert "lab submit:bad" in info.value.findings[0].location

    def test_gate_does_not_reject_conflict_prone_specs(self):
        # Deliberate: conflict analysis needs built components and a
        # planner pass; submission only lints.  A conflict-prone spec
        # submits fine and reports CF102 when checked in full.
        prone = ScenarioSpec.from_dict(
            spec_dict(
                workload={
                    "kind": "strided",
                    "params": {"base": 16, "stride": 1, "length": 64},
                }
            )
        )
        assert require_submittable([prone]) == []
