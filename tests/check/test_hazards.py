"""Static batch prediction vs the decoupled machine's runtime batches.

For every registered program kind and a sweep of stream counts, the
batch partition :func:`repro.check.predict_batches` derives from
register names and address arithmetic alone must equal the partition
the cycle-accurate :class:`DecoupledVectorMachine` actually forms.
"""

from __future__ import annotations

import pytest

from repro.check import predict_batches
from repro.mappings import SectionXorMapping
from repro.memory import MemoryConfig
from repro.processor import DecoupledVectorMachine
from repro.scenarios import ComponentSpec
from repro.scenarios.registry import PROGRAM, build, example_params, kinds

REGISTER_LENGTH = 64
STREAMS = [1, 2, 4]


def runtime_batches(scenario, streams: int) -> list[tuple[int, ...]]:
    """The batch partition the machine actually forms, recovered from
    instruction timings: a new batch starts whenever a memory
    instruction lands on stream slot 0."""
    config = MemoryConfig(SectionXorMapping(3, 4, 9), 3, ports=streams)
    machine = DecoupledVectorMachine(config, REGISTER_LENGTH)
    for init in scenario.inputs:
        machine.store.write_vector(*init)
    result = machine.run(scenario.program)
    batches: list[list[int]] = []
    for timing in sorted(result.memory_timings(), key=lambda t: t.position):
        if timing.stream == 0:
            batches.append([])
        batches[-1].append(timing.position)
    return [tuple(batch) for batch in batches]


@pytest.mark.parametrize("kind", kinds(PROGRAM))
@pytest.mark.parametrize("streams", STREAMS)
def test_static_batches_match_machine(kind, streams):
    scenario = build(
        PROGRAM,
        ComponentSpec.of(kind, **example_params(PROGRAM, kind)),
        register_length=REGISTER_LENGTH,
    )
    report = predict_batches(
        scenario.program,
        memory_streams=streams,
        register_length=REGISTER_LENGTH,
    )
    assert list(report.batches) == runtime_batches(scenario, streams), (
        f"{kind} streams={streams}"
    )
    assert report.memory_streams == streams
    assert report.peak_concurrency <= streams
    assert report.memory_instruction_count == sum(
        len(batch) for batch in report.batches
    )


def test_every_break_names_a_batch_boundary():
    scenario = build(
        PROGRAM,
        ComponentSpec.of("daxpy", **example_params(PROGRAM, "daxpy")),
        register_length=REGISTER_LENGTH,
    )
    report = predict_batches(
        scenario.program, memory_streams=2, register_length=REGISTER_LENGTH
    )
    boundary_positions = {batch[0] for batch in report.batches[1:]}
    for break_ in report.breaks:
        # A break is recorded against the instruction that could not
        # join; the next batch starts at the next memory instruction.
        assert any(
            break_.position <= start for start in boundary_positions
        ), break_
        assert break_.reason
