"""CLI tests for `repro check`."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean.json"
    path.write_text(
        json.dumps(
            {
                "name": "clean",
                "mapping": {"kind": "matched-xor", "params": {"t": 3, "s": 4}},
                "memory": {"t": 3},
                "workload": {
                    "kind": "strided",
                    "params": {"base": 16, "stride": 12, "length": 128},
                },
            }
        )
    )
    return path


@pytest.fixture
def broken_file(tmp_path):
    path = tmp_path / "broken.json"
    path.write_text(
        json.dumps(
            {
                "name": "broken",
                "mapping": {"kind": "warp", "params": {}},
                "memory": {"t": 3},
                "workload": {
                    "kind": "strided",
                    "params": {"stride": 1, "length": 8},
                },
            }
        )
    )
    return path


class TestCheckCommand:
    def test_clean_file_exits_zero_with_findings_and_summary(
        self, clean_file, capsys
    ):
        assert main(["check", str(clean_file)]) == 0
        output = capsys.readouterr().out
        assert "CF101 · info ·" in output
        assert "0 error(s)" in output

    def test_error_file_exits_one(self, broken_file, capsys):
        assert main(["check", str(broken_file)]) == 1
        output = capsys.readouterr().out
        assert "SL301 · error ·" in output

    def test_bad_stride_example_exits_one(self, capsys):
        code = main(["check", "examples/scenario_bad_stride.json"])
        assert code == 1
        assert "CF104 · error ·" in capsys.readouterr().out

    def test_mixed_files_exit_with_the_worst(
        self, clean_file, broken_file, capsys
    ):
        assert main(["check", str(clean_file), str(broken_file)]) == 1

    def test_missing_file_exits_two(self, capsys):
        assert main(["check", "/nonexistent/spec.json"]) == 2
        assert "no such" in capsys.readouterr().err

    def test_json_output_shape(self, clean_file, broken_file, capsys):
        code = main(["check", str(clean_file), str(broken_file), "--json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert [entry["file"] for entry in payload] == [
            str(clean_file),
            str(broken_file),
        ]
        assert payload[0]["exit_code"] == 0
        assert payload[1]["exit_code"] == 1
        finding = payload[1]["findings"][0]
        assert set(finding) == {"rule_id", "severity", "location", "message"}

    def test_unparsable_json_is_a_finding_not_a_crash(self, tmp_path, capsys):
        path = tmp_path / "garbage.json"
        path.write_text("{not json")
        assert main(["check", str(path)]) == 1
        assert "SL304" in capsys.readouterr().out
