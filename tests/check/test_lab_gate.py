"""Submit-time static lint in the lab executor.

`run_jobs` lints a batch's scenario jobs before touching the store:
error findings abort the whole batch with a CheckError (nothing
queued, nothing cached), warnings surface through the progress hook,
and non-scenario jobs pass through untouched.
"""

from __future__ import annotations

import pytest

from repro.check import CheckError
from repro.lab.executor import run_jobs
from repro.lab.jobs import scenario_job, scenario_spec_of
from repro.lab.store import ArtifactStore
from repro.scenarios import ComponentSpec, MemorySpec, ScenarioSpec


def spec(name="gate", **mapping_params):
    params = dict(t=3, s=4)
    params.update(mapping_params)
    return ScenarioSpec(
        mapping=ComponentSpec.of("matched-xor", **params),
        memory=MemorySpec(t=3),
        workload=ComponentSpec.of("strided", base=16, stride=12, length=128),
        name=name,
    )


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "lab")


class TestLabSubmitGate:
    def test_bad_param_fails_the_batch_before_execution(self, store):
        jobs = [scenario_job(spec()), scenario_job(spec("bad", warp=9))]
        with pytest.raises(CheckError, match="SL302") as info:
            run_jobs(jobs, store=store, backend="serial")
        assert info.value.findings[0].rule_id == "SL302"
        # Nothing ran, nothing was cached — a later clean batch misses.
        report = run_jobs(
            [scenario_job(spec())], store=store, backend="serial"
        )
        assert report.cache_hits == 0 and report.all_passed

    def test_duplicate_specs_warn_via_progress(self, store):
        lines = []
        jobs = [scenario_job(spec("a")), scenario_job(spec("b"))]
        report = run_jobs(
            jobs, store=store, backend="serial", progress=lines.append
        )
        assert report.all_passed
        assert any("lint: DD401" in line for line in lines)

    def test_clean_scenario_batch_is_silent(self, store):
        lines = []
        report = run_jobs(
            [scenario_job(spec())],
            store=store,
            backend="serial",
            progress=lines.append,
        )
        assert report.all_passed
        assert not any(line.startswith("lint:") for line in lines)

    def test_scenario_spec_of_roundtrip_and_non_scenario_jobs(self, store):
        job = scenario_job(spec())
        assert scenario_spec_of(job) == spec()
        from repro.lab.jobs import experiment_spec

        assert scenario_spec_of(experiment_spec("E01")) is None
