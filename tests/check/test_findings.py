"""The findings grammar: Finding, CheckReport, CheckError contracts."""

from __future__ import annotations

import pytest

from repro.check import CheckError, CheckReport, Finding
from repro.check.findings import SEVERITIES
from repro.errors import ReproError


class TestFinding:
    def test_render_is_the_canonical_grammar(self):
        finding = Finding("CF101", "info", "spec.json:demo", "all good")
        assert finding.render() == "CF101 · info · spec.json:demo · all good"

    def test_to_dict_round_trips_every_field(self):
        finding = Finding("SL301", "error", "loc", "msg")
        assert finding.to_dict() == {
            "rule_id": "SL301",
            "severity": "error",
            "location": "loc",
            "message": "msg",
        }

    @pytest.mark.parametrize("severity", SEVERITIES)
    def test_every_documented_severity_is_accepted(self, severity):
        Finding("XX000", severity, "loc", "msg")

    def test_unknown_severity_rejected(self):
        with pytest.raises(ValueError, match="severity"):
            Finding("XX000", "fatal", "loc", "msg")


class TestCheckReport:
    def report(self):
        return CheckReport(
            (
                Finding("SL301", "error", "a", "bad kind"),
                Finding("CF102", "warn", "b", "conflict-prone"),
                Finding("HZ201", "info", "c", "batches"),
            )
        )

    def test_severity_partitions(self):
        report = self.report()
        assert [f.rule_id for f in report.errors] == ["SL301"]
        assert [f.rule_id for f in report.warnings] == ["CF102"]
        assert report.count("info") == 1

    def test_exit_code_is_one_iff_errors(self):
        assert self.report().exit_code == 1
        clean = CheckReport((Finding("CF101", "info", "a", "fine"),))
        assert clean.exit_code == 0
        assert not clean.has_errors

    def test_render_one_line_per_finding(self):
        assert len(self.report().render().splitlines()) == 3

    def test_to_dict_carries_counts_and_exit_code(self):
        payload = self.report().to_dict()
        assert payload["errors"] == 1
        assert payload["warnings"] == 1
        assert payload["infos"] == 1
        assert payload["exit_code"] == 1
        assert len(payload["findings"]) == 3


class TestCheckError:
    def test_is_a_repro_error_with_findings(self):
        finding = Finding("SL302", "error", "loc", "bad param")
        error = CheckError("1 static check error(s)", findings=(finding,))
        assert isinstance(error, ReproError)
        assert error.findings == (finding,)

    def test_findings_default_to_empty(self):
        assert CheckError("boom").findings == ()
