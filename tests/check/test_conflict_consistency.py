"""Analyzer conflict verdicts vs the memory kernel's ground truth.

The property the whole check subsystem stands on: for every sampled
(mapping, stride, length, ports, mode) design point, the static CF101
verdict holds exactly when the cycle-accurate kernel measures a
conflict-free run (latency equal to the T+L+1 minimum), and CF102
holds exactly when it does not.
"""

from __future__ import annotations

import itertools
import json
import re

import pytest

from repro.check import check_document
from repro.scenarios import simulate, ScenarioSpec

MAPPINGS = [
    ("matched-xor", {"t": 3, "s": 4}, 3),
    ("matched-xor", {"t": 2, "s": 3}, 2),
    ("section-xor", {"t": 3, "s": 4, "y": 9}, 3),
    ("interleaved", {"m": 3}, 3),
    ("skewed", {"m": 3, "s": 4}, 3),
]
STRIDES = [1, 2, 3, 5, 8, 12, 24, 96, 1536]
LENGTHS = [64, 128]
PORTS = [1, 2]
MODES = ["auto", "ordered"]

_MINIMUM = re.compile(r"T\+L\+1 = (\d+) cycles")


def _spec_dict(kind, params, t, stride, length, ports, mode) -> dict:
    return {
        "name": "probe",
        "mapping": {"kind": kind, "params": params},
        "memory": {"t": t, "ports": ports},
        "workload": {
            "kind": "strided",
            "params": {"base": 16, "stride": stride, "length": length},
        },
        "drive": {"kind": "planner", "params": {"mode": mode}},
    }


@pytest.mark.parametrize("mapping_kind,params,t", MAPPINGS)
@pytest.mark.parametrize("mode", MODES)
def test_verdicts_match_kernel_measurement(mapping_kind, params, t, mode):
    for stride, length, ports in itertools.product(STRIDES, LENGTHS, PORTS):
        document = _spec_dict(
            mapping_kind, params, t, stride, length, ports, mode
        )
        report = check_document(json.dumps(document), source="probe")
        verdicts = [
            finding
            for finding in report.findings
            if finding.rule_id in ("CF101", "CF102", "CF104")
        ]
        assert len(verdicts) == 1, report.render()
        verdict = verdicts[0]
        assert verdict.rule_id != "CF104", verdict.render()

        result = simulate(ScenarioSpec.from_dict(document))
        measured_cf = result.conflict_free
        point = f"{mapping_kind}{params} stride={stride} L={length} ports={ports} mode={mode}"
        if verdict.rule_id == "CF101":
            assert measured_cf, f"static CF but kernel conflicts: {point}"
            assert result.latency == result.minimum_latency, point
            match = _MINIMUM.search(verdict.message)
            assert match, verdict.message
            assert int(match.group(1)) == result.minimum_latency, point
        else:
            assert not measured_cf, (
                f"static conflict-prone but kernel ran conflict-free: {point}"
            )
            assert result.latency > result.minimum_latency, point


def test_forced_mode_impossibility_is_an_error():
    document = _spec_dict(
        "matched-xor", {"t": 3, "s": 4}, 3, 96, 128, 1, "conflict_free"
    )
    report = check_document(json.dumps(document), source="probe")
    [verdict] = [
        finding
        for finding in report.findings
        if finding.rule_id.startswith("CF")
    ]
    assert verdict.rule_id == "CF104"
    assert verdict.severity == "error"
    assert report.exit_code == 1
    # ...and simulate() would indeed refuse this spec.
    from repro.errors import OrderingError

    with pytest.raises(OrderingError):
        simulate(ScenarioSpec.from_dict(document))


def test_indexed_access_has_no_closed_form_verdict():
    document = {
        "mapping": {"kind": "matched-xor", "params": {"t": 3, "s": 4}},
        "memory": {"t": 3},
        "workload": {"kind": "bit-reversal", "params": {"bits": 6}},
    }
    report = check_document(json.dumps(document), source="probe")
    assert any(f.rule_id == "CF103" for f in report.findings)
    assert report.exit_code == 0
