"""Shared fixtures: the paper's two headline configurations and helpers."""

from __future__ import annotations

import pytest

from repro.core.planner import AccessPlanner
from repro.mappings.linear import MatchedXorMapping
from repro.mappings.section import SectionXorMapping
from repro.memory.config import MemoryConfig
from repro.memory.system import MemorySystem


@pytest.fixture
def matched_mapping() -> MatchedXorMapping:
    """The paper's running matched example: t=3, s=4 (L=128)."""
    return MatchedXorMapping(3, 4)


@pytest.fixture
def matched_config(matched_mapping) -> MemoryConfig:
    return MemoryConfig(matched_mapping, 3)


@pytest.fixture
def matched_planner(matched_mapping) -> AccessPlanner:
    return AccessPlanner(matched_mapping, 3)


@pytest.fixture
def matched_system(matched_config) -> MemorySystem:
    return MemorySystem(matched_config)


@pytest.fixture
def section_mapping() -> SectionXorMapping:
    """The paper's unmatched example: t=3, s=4, y=9 (L=128, M=64)."""
    return SectionXorMapping(3, 4, 9)


@pytest.fixture
def section_config(section_mapping) -> MemoryConfig:
    return MemoryConfig(section_mapping, 3)


@pytest.fixture
def section_planner(section_mapping) -> AccessPlanner:
    return AccessPlanner(section_mapping, 3)


@pytest.fixture
def section_system(section_config) -> MemorySystem:
    return MemorySystem(section_config)


@pytest.fixture
def figure3_mapping() -> MatchedXorMapping:
    """The Figure 3 mapping: m=t=3, s=3."""
    return MatchedXorMapping(3, 3)


@pytest.fixture
def figure7_mapping() -> SectionXorMapping:
    """The Figure 7 mapping: t=2, m=4, s=3, y=7."""
    return SectionXorMapping(2, 3, 7)
