"""Bench E05: Figure 7 layout + Section 4.1 examples.

Regenerates the paper artifact via the shared experiment runner, prints
the table (run with -s to see it) and measures the regeneration cost.
"""

from conftest import report_and_assert

from repro.report.experiments import run_e05


def test_e05(benchmark):
    result = benchmark.pedantic(run_e05, rounds=3, iterations=1)
    report_and_assert(result)
