"""Bench E12: Ordering comparison across the window.

Regenerates the paper artifact via the shared experiment runner, prints
the table (run with -s to see it) and measures the regeneration cost.
"""

from conftest import report_and_assert

from repro.report.experiments import run_e12


def test_e12(benchmark):
    result = benchmark.pedantic(run_e12, rounds=3, iterations=1)
    report_and_assert(result)
