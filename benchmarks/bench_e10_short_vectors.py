"""Bench E10: Section 5-C short-vector composite access.

Regenerates the paper artifact via the shared experiment runner, prints
the table (run with -s to see it) and measures the regeneration cost.
"""

from conftest import report_and_assert

from repro.report.experiments import run_e10


def test_e10(benchmark):
    result = benchmark.pedantic(run_e10, rounds=3, iterations=1)
    report_and_assert(result)
