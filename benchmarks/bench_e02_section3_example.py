"""Bench E02: Section 3 stride-12 worked example.

Regenerates the paper artifact via the shared experiment runner, prints
the table (run with -s to see it) and measures the regeneration cost.
"""

from conftest import report_and_assert

from repro.report.experiments import run_e02


def test_e02(benchmark):
    result = benchmark.pedantic(run_e02, rounds=3, iterations=1)
    report_and_assert(result)
