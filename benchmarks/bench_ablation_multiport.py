"""Ablation A7: memory ports vs modules — where extra bandwidth goes.

Section 5-E argues that adding modules is expensive relative to the
stride coverage it buys; Section 6 lists multi-port processors as future
work.  This bench crosses the two: with two streams of work, compare

* one port on the matched memory (M = 8),
* one port on the unmatched memory (M = 64),
* two ports on the unmatched memory (section-disjoint streams).

The expected shape: a second port roughly halves the elapsed time only
when the memory has both the module headroom (M > T) and streams whose
module footprints are disjoint — bandwidth must exist in the *modules*,
not just the buses.
"""

from repro.core.planner import AccessPlanner
from repro.core.vector import VectorAccess
from repro.memory.config import MemoryConfig
from repro.memory.multiport import MultiPortMemorySystem
from repro.memory.multistream import MultiStreamMemorySystem
from repro.report.tables import render_table

LENGTH = 64


def build_rows() -> list[list]:
    matched = MemoryConfig.matched(t=3, s=4, input_capacity=2)
    unmatched = MemoryConfig.unmatched(t=3, s=4, y=9, input_capacity=2)
    matched_planner = AccessPlanner(matched.mapping, 3)
    unmatched_planner = AccessPlanner(unmatched.mapping, 3)

    # Stream pair A: disjoint sections on the unmatched memory (bases one
    # 2**y block apart); on the matched memory the same pair shares all
    # eight modules.
    def streams(planner):
        return [
            planner.plan(VectorAccess(0, 16, LENGTH)).request_stream(),
            planner.plan(VectorAccess(1 << 9, 16, LENGTH)).request_stream(),
        ]

    rows = []
    single_matched = MultiStreamMemorySystem(matched).run_streams(
        streams(matched_planner)
    )
    rows.append(
        ["matched M=8, 1 port", single_matched.total_cycles,
         sum(s.wait_count for s in single_matched.streams)]
    )
    single_unmatched = MultiStreamMemorySystem(unmatched).run_streams(
        streams(unmatched_planner)
    )
    rows.append(
        ["unmatched M=64, 1 port", single_unmatched.total_cycles,
         sum(s.wait_count for s in single_unmatched.streams)]
    )
    dual_unmatched = MultiPortMemorySystem(unmatched, 2).run_streams(
        streams(unmatched_planner)
    )
    rows.append(
        ["unmatched M=64, 2 ports", dual_unmatched.total_cycles,
         sum(s.wait_count for s in dual_unmatched.streams)]
    )
    dual_matched = MultiPortMemorySystem(matched, 2).run_streams(
        streams(matched_planner)
    )
    rows.append(
        ["matched M=8, 2 ports", dual_matched.total_cycles,
         sum(s.wait_count for s in dual_matched.streams)]
    )
    return rows


def test_multiport_ablation(benchmark):
    rows = benchmark.pedantic(build_rows, rounds=3, iterations=1)
    print()
    print(f"== A7: ports vs modules, two {LENGTH}-element stride-16 streams")
    print(render_table(["configuration", "total cycles", "module waits"], rows))
    by_name = {row[0]: row for row in rows}
    one_port = by_name["unmatched M=64, 1 port"][1]
    two_ports = by_name["unmatched M=64, 2 ports"][1]
    # A second port on the module-rich memory nearly halves the time.
    assert two_ports < 0.65 * one_port
    # On the matched memory the second port helps far less: the eight
    # modules are the bottleneck, not the bus.
    matched_two = by_name["matched M=8, 2 ports"][1]
    matched_one = by_name["matched M=8, 1 port"][1]
    assert matched_two > 0.8 * matched_one
