"""Bench E03: Theorem 1 matched window sweep.

Regenerates the paper artifact via the shared experiment runner, prints
the table (run with -s to see it) and measures the regeneration cost.
"""

from conftest import report_and_assert

from repro.report.experiments import run_e03


def test_e03(benchmark):
    result = benchmark.pedantic(run_e03, rounds=3, iterations=1)
    report_and_assert(result)
