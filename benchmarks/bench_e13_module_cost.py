"""Bench E13: Section 5-E module-cost trade-off.

Regenerates the paper artifact via the shared experiment runner, prints
the table (run with -s to see it) and measures the regeneration cost.
"""

from conftest import report_and_assert

from repro.report.experiments import run_e13


def test_e13(benchmark):
    result = benchmark.pedantic(run_e13, rounds=3, iterations=1)
    report_and_assert(result)
