"""Bench E15: Figures 4-6 hardware equivalence.

Regenerates the paper artifact via the shared experiment runner, prints
the table (run with -s to see it) and measures the regeneration cost.
"""

from conftest import report_and_assert

from repro.report.experiments import run_e15


def test_e15(benchmark):
    result = benchmark.pedantic(run_e15, rounds=3, iterations=1)
    report_and_assert(result)
