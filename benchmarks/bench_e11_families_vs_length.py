"""Bench E11: Section 5-H families vs vector length.

Regenerates the paper artifact via the shared experiment runner, prints
the table (run with -s to see it) and measures the regeneration cost.
"""

from conftest import report_and_assert

from repro.report.experiments import run_e11


def test_e11(benchmark):
    result = benchmark.pedantic(run_e11, rounds=3, iterations=1)
    report_and_assert(result)
