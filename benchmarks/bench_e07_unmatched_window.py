"""Bench E07: Theorem 3 unmatched window sweep.

Regenerates the paper artifact via the shared experiment runner, prints
the table (run with -s to see it) and measures the regeneration cost.
"""

from conftest import report_and_assert

from repro.report.experiments import run_e07


def test_e07(benchmark):
    result = benchmark.pedantic(run_e07, rounds=3, iterations=1)
    report_and_assert(result)
