"""Ablation A5: the paper's window vs Rau-style pseudo-random interleaving.

Pseudo-random XOR matrices (Rau, ISCA 1991 — reference [12]) spread
every stride family decently but no family perfectly: there is no
conflict-free window, just uniformly mediocre behaviour.  The paper's
structured mapping is the opposite bet: perfection on a window, cliffs
outside it.  This bench measures both across families 0..7 and checks
exactly that shape.
"""

from repro.core.planner import AccessPlanner
from repro.core.vector import VectorAccess
from repro.mappings.matrix import PseudoRandomMapping
from repro.memory.config import MemoryConfig
from repro.memory.system import MemorySystem
from repro.report.tables import render_table

LENGTH = 128
MINIMUM = 8 + LENGTH + 1


def sweep() -> list[list]:
    xor_config = MemoryConfig.matched(t=3, s=4, input_capacity=4)
    xor_planner = AccessPlanner(xor_config.mapping, 3)
    xor_system = MemorySystem(xor_config)

    random_mapping = PseudoRandomMapping(3, seed=12)
    random_config = MemoryConfig(random_mapping, 3, input_capacity=4)
    random_planner = AccessPlanner(random_mapping, 3)
    random_system = MemorySystem(random_config)

    rows = []
    for family in range(8):
        vector = VectorAccess(16, 3 * (1 << family), LENGTH)
        xor_run = xor_system.run_plan(xor_planner.plan(vector, mode="auto"))
        random_run = random_system.run_plan(
            random_planner.plan(vector, mode="ordered")
        )
        rows.append(
            [
                family,
                xor_run.latency,
                xor_run.conflict_free,
                random_run.latency,
                random_run.conflict_free,
            ]
        )
    return rows


def test_pseudorandom_ablation(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("== A5: structured window (XOR + reorder) vs pseudo-random "
          "interleaving (ordered)")
    print(
        render_table(
            ["family", "paper latency", "paper CF", "random latency",
             "random CF"],
            rows,
        )
    )
    in_window = [row for row in rows if row[0] <= 4]
    beyond = [row for row in rows if row[0] > 4]
    # The paper's design: perfect inside the window...
    assert all(row[1] == MINIMUM and row[2] for row in in_window)
    # ...cliffs outside it.
    assert all(row[1] > MINIMUM for row in beyond)
    # The pseudo-random design has no conflict-free window at all on
    # this stride set, but also avoids full serialisation on most
    # families beyond the window.
    assert sum(1 for row in rows if row[4]) <= 2
    random_worst = max(row[3] for row in rows)
    xor_worst = max(row[1] for row in rows)
    assert random_worst < xor_worst  # random spreads the worst case
