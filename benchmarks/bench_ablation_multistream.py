"""Ablation A3: several vectors sharing the memory (Section 6 outlook).

The paper defers simultaneous multi-vector access to future work.  This
bench quantifies why: two individually conflict-free accesses, issued
through one address bus (round-robin), shear each other's module timing
and re-introduce conflicts.  Deeper input buffers absorb some of the
interference but the per-stream latency never returns to ``T + L + 1``
relative to its own span.
"""

from repro.core.planner import AccessPlanner
from repro.core.vector import VectorAccess
from repro.memory.config import MemoryConfig
from repro.memory.multistream import MultiStreamMemorySystem
from repro.memory.system import MemorySystem
from repro.report.tables import render_table


def interference_sweep() -> list[list]:
    rows = []
    for q in (1, 2, 4):
        config = MemoryConfig.matched(t=3, s=4, input_capacity=q)
        planner = AccessPlanner(config.mapping, 3)
        solo_system = MemorySystem(config)
        multi_system = MultiStreamMemorySystem(config)

        a = planner.plan(VectorAccess(0, 12, 128))
        b = planner.plan(VectorAccess(1, 12, 128))
        solo = solo_system.run_plan(a).latency
        shared = multi_system.run_streams(
            [a.request_stream(), b.request_stream()]
        )
        waits = sum(stream.wait_count for stream in shared.streams)
        rows.append(
            [
                q,
                solo,
                shared.total_cycles,
                max(stream.latency for stream in shared.streams),
                waits,
                round(shared.bus_utilisation, 3),
            ]
        )
    return rows


def test_multistream_ablation(benchmark):
    rows = benchmark.pedantic(interference_sweep, rounds=1, iterations=1)
    print()
    print("== A3: two conflict-free streams sharing the memory "
          "(stride 12, L=128 each)")
    print(
        render_table(
            [
                "q",
                "solo latency",
                "shared total",
                "worst stream latency",
                "module waits",
                "bus util",
            ],
            rows,
        )
    )
    for q, solo, shared_total, _worst, waits, _util in rows:
        # Two streams need at least two issue spans.
        assert shared_total >= 2 * 128
        # Interference exists at shallow buffers.
        if q == 1:
            assert waits > 0
    # The aggregate stays close to bus-limited: within 25% of 256 + drain.
    assert all(row[2] <= (2 * 128 + 9) * 1.25 for row in rows)
