"""Design-space bench: how the window and efficiency scale with (lambda, t).

Extends the paper's two design points into the surrounding space using
the Section 5 closed forms, and spot-validates two off-paper points with
the cycle-accurate simulator.
"""

from repro.analysis.sweeps import (
    design_row,
    efficiency_crossover_t,
    sweep_lambda,
    sweep_t,
)
from repro.core.planner import AccessPlanner
from repro.core.vector import VectorAccess
from repro.memory.config import MemoryConfig
from repro.memory.system import MemorySystem
from repro.report.tables import render_table


def build_tables() -> tuple[list[list], list[list]]:
    lambda_rows = [
        [
            row.lambda_exponent,
            row.vector_length,
            row.matched_window,
            row.unmatched_window,
            float(row.matched_efficiency),
            float(row.unmatched_efficiency),
            round(row.advantage, 2),
        ]
        for row in sweep_lambda(3, range(3, 11))
    ]
    t_rows = [
        [
            row.t,
            1 << row.t,
            row.matched_window,
            float(row.matched_efficiency),
            float(row.ordered_matched_efficiency),
            round(row.advantage, 2),
        ]
        for row in sweep_t(7, range(0, 8))
    ]
    return lambda_rows, t_rows


def test_design_space(benchmark):
    lambda_rows, t_rows = benchmark.pedantic(
        build_tables, rounds=3, iterations=1
    )
    print()
    print("== D1: sweep register length (t=3, T=8)")
    print(
        render_table(
            ["lambda", "L", "matched fams", "unmatched fams",
             "eta matched", "eta unmatched", "vs ordered"],
            lambda_rows,
        )
    )
    print()
    print("== D2: sweep memory ratio (lambda=7, L=128)")
    print(
        render_table(
            ["t", "T", "matched fams", "eta matched", "eta ordered",
             "advantage"],
            t_rows,
        )
    )

    # Longer registers monotonically widen the window and the efficiency.
    etas = [row[4] for row in lambda_rows]
    assert etas == sorted(etas)
    # Slower memories (bigger t) hurt, and the advantage over ordered
    # access is unimodal: it grows while conflicts get more expensive,
    # peaks, then collapses as the shrinking window (lambda - t families)
    # leaves nothing to reorder.  At the extremes (t=0 and t=lambda) both
    # schemes coincide.
    advantages = [row[5] for row in t_rows]
    assert advantages[0] == 1.0 and advantages[-1] == 1.0
    assert all(a >= 1.0 for a in advantages)
    peak = advantages.index(max(advantages))
    assert advantages[: peak + 1] == sorted(advantages[: peak + 1])
    assert advantages[peak:] == sorted(advantages[peak:], reverse=True)
    assert t_rows[peak][0] == 4
    # The paper's design point appears in both sweeps consistently.
    paper = design_row(7, 3)
    assert round(float(paper.matched_efficiency), 3) == 0.914

    # Spot-validate one off-paper point with the simulator: lambda=9,
    # t=4 -> s=5, window 0..5, latency T+L+1 = 16+512+1.
    config = MemoryConfig.matched(t=4, s=5)
    planner = AccessPlanner(config.mapping, 4)
    system = MemorySystem(config)
    for family in range(6):
        vector = VectorAccess(13, 3 * (1 << family), 512)
        result = system.run_plan(planner.plan(vector))
        assert result.conflict_free and result.latency == 16 + 512 + 1

    crossover = efficiency_crossover_t(7)
    print(f"\nmatched eta drops below 0.9 at t={crossover} for lambda=7")
    assert crossover == 4
