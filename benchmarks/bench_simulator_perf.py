"""Performance benchmarks of the library's own machinery.

Not a paper artifact — these measure the simulator, planner and hardware
engine throughput so performance regressions in the substrate are caught
by ``pytest benchmarks/ --benchmark-only`` alongside the reproduction
benches.  The CI perf-smoke job runs this file on a fixed design point
and uploads the ``--benchmark-json`` timings as a ``BENCH_*.json``
artifact, so the kernel's throughput trajectory is recorded per commit.
"""

from repro.core.planner import AccessPlanner
from repro.core.vector import VectorAccess
from repro.hardware.oos_engine import Figure6Engine
from repro.memory.config import MemoryConfig
from repro.memory.kernel import MemoryKernel
from repro.memory.system import MemorySystem
from repro.processor.decoupled import DecoupledVectorMachine
from repro.processor.stripmine import daxpy_program

CONFIG = MemoryConfig.matched(t=3, s=4)
PLANNER = AccessPlanner(CONFIG.mapping, 3)
SYSTEM = MemorySystem(CONFIG)
VECTOR = VectorAccess(16, 12, 128)
UNMATCHED = MemoryConfig.unmatched(t=3, s=4, y=9, input_capacity=2)
UNMATCHED_PLANNER = AccessPlanner(UNMATCHED.mapping, 3)


def test_plan_conflict_free(benchmark):
    plan = benchmark(PLANNER.plan, VECTOR, "conflict_free")
    assert plan.conflict_free


def test_simulate_conflict_free_access(benchmark):
    plan = PLANNER.plan(VECTOR, mode="conflict_free")
    result = benchmark(SYSTEM.run_plan, plan)
    assert result.latency == 137


def test_simulate_conflicting_access(benchmark):
    plan = PLANNER.plan(VectorAccess(0, 1 << 6, 128), mode="ordered")
    result = benchmark(SYSTEM.run_plan, plan)
    assert not result.conflict_free


def test_figure6_engine(benchmark):
    def build_and_run():
        return Figure6Engine(PLANNER, VECTOR).run()

    stream = benchmark(build_and_run)
    assert len(stream) == 128


def test_full_machine_daxpy(benchmark):
    program = daxpy_program(256, 128, 2.0, 0, 3, 10**6, 1)

    def run_machine():
        machine = DecoupledVectorMachine(CONFIG, register_length=128)
        machine.store.write_vector(0, 3, [1.0] * 256)
        machine.store.write_vector(10**6, 1, [2.0] * 256)
        return machine.run(program)

    result = benchmark(run_machine)
    assert result.total_cycles > 0


def test_kernel_two_streams_one_bus(benchmark):
    """The unified kernel on the classic shared-bus interference case."""
    config = MemoryConfig.matched(t=3, s=4, input_capacity=2)
    planner = AccessPlanner(config.mapping, 3)
    streams = [
        planner.plan(VectorAccess(0, 12, 128)).request_stream(),
        planner.plan(VectorAccess(1, 12, 128)).request_stream(),
    ]
    kernel = MemoryKernel(config)

    run = benchmark(kernel.run, streams)
    assert run.aggregate_elements == 256


def test_kernel_two_streams_traced(benchmark):
    """The same case with a live tracer: post-hoc event derivation only.

    Compare against ``test_kernel_two_streams_one_bus`` to see the
    tracing overhead; the disabled-tracing path must stay within noise
    of the seed (the cycle loop is byte-identical either way).
    """
    from repro.obs import Tracer

    config = MemoryConfig.matched(t=3, s=4, input_capacity=2)
    planner = AccessPlanner(config.mapping, 3)
    streams = [
        planner.plan(VectorAccess(0, 12, 128)).request_stream(),
        planner.plan(VectorAccess(1, 12, 128)).request_stream(),
    ]

    def run_traced():
        kernel = MemoryKernel(config, tracer=Tracer())
        return kernel.run(streams)

    run = benchmark(run_traced)
    assert run.aggregate_elements == 256


def test_kernel_two_ports(benchmark):
    """Two section-disjoint streams over two address/result ports."""
    streams = [
        UNMATCHED_PLANNER.plan(VectorAccess(0, 16, 64)).request_stream(),
        UNMATCHED_PLANNER.plan(
            VectorAccess(1 << 9, 16, 64)
        ).request_stream(),
    ]
    kernel = MemoryKernel(UNMATCHED, ports=2)

    run = benchmark(kernel.run, streams)
    assert run.total_cycles <= 64 + 8 + 1 + 8


def test_full_machine_daxpy_two_ports(benchmark):
    """The program path with concurrent in-flight memory instructions."""
    config = MemoryConfig.unmatched(
        t=3, s=4, y=9, input_capacity=2, ports=2
    )
    program = daxpy_program(256, 128, 2.0, 0, 3, 10**6, 1)

    def run_machine():
        machine = DecoupledVectorMachine(config, register_length=128)
        machine.store.write_vector(0, 3, [1.0] * 256)
        machine.store.write_vector(10**6, 1, [2.0] * 256)
        return machine.run(program)

    result = benchmark(run_machine)
    assert result.stream_concurrency_peak == 2


# -- batch design-point evaluation ----------------------------------------
#
# The batch engine's acceptance bar (see tests/batch/): >= 10x over the
# per-point kernel on a 1000-cell conflict-free-heavy grid.  The grid
# mixes strides whose accesses plan conflict-free under the matched XOR
# mapping (the analytic tier) with conflict-prone ones (the SoA tier);
# the baseline bench runs the identical specs through simulate() so the
# BENCH_*.json artifact records both sides of the ratio per commit.


def _batch_grid():
    from repro.scenarios import (
        ComponentSpec,
        MemorySpec,
        ScenarioGrid,
        ScenarioSpec,
    )

    base = ScenarioSpec(
        mapping=ComponentSpec.of("matched-xor", t=3, s=4),
        memory=MemorySpec(t=3),
        workload=ComponentSpec.of("strided", base=0, stride=1, length=64),
        name="batch-perf",
    )
    return ScenarioGrid.of(
        base,
        workload__params__stride=(1, 2, 3, 4, 5, 7, 8, 12, 16, 96),
        workload__params__length=(32, 64, 128, 256, 512),
        workload__params__base=(0, 8, 64, 128),
        memory__q=(1, 2, 4, 8, 16),
    )


_BATCH_SPECS = _batch_grid().expand()


def test_batch_grid_1000_cells(benchmark):
    """The headline number: one 1000-cell grid through evaluate_batch."""
    from repro.batch import evaluate_batch

    report = benchmark(evaluate_batch, _BATCH_SPECS)
    assert len(report.results) == 1000
    assert report.analytic_count > 0
    assert report.soa_count > 0
    assert report.fallback_count == 0


def test_batch_grid_1000_cells_stdlib(benchmark):
    """The same grid with numpy acceleration forced off."""
    from repro.batch import evaluate_batch

    report = benchmark(evaluate_batch, _BATCH_SPECS, use_numpy=False)
    assert len(report.results) == 1000


def test_kernel_grid_1000_cells_baseline(benchmark):
    """Per-point simulate() over the identical grid — the denominator."""
    from repro.scenarios import simulate

    def run_all():
        return [simulate(spec) for spec in _BATCH_SPECS]

    results = benchmark.pedantic(run_all, rounds=3, iterations=1)
    assert len(results) == 1000


def test_batch_grid_analytic_only(benchmark):
    """A grid whose every point the closed form answers outright."""
    from repro.batch import evaluate_batch
    from repro.scenarios import (
        ComponentSpec,
        MemorySpec,
        ScenarioGrid,
        ScenarioSpec,
    )

    base = ScenarioSpec(
        mapping=ComponentSpec.of("matched-xor", t=3, s=4),
        memory=MemorySpec(t=3),
        workload=ComponentSpec.of("strided", base=0, stride=1, length=128),
        name="analytic-perf",
    )
    specs = ScenarioGrid.of(
        base,
        workload__params__stride=(1, 2, 3, 4, 8, 12, 16, 24),
        workload__params__length=(128, 256, 512, 1024),
        workload__params__base=(0, 8, 64, 128, 1024),
    ).expand()
    report = benchmark(evaluate_batch, specs)
    assert report.analytic_count == len(specs) == 160


def test_batch_grid_mixed_with_indexed(benchmark):
    """Strided + indexed points: the SoA kernel carries the gathers."""
    from repro.batch import evaluate_batch
    from repro.scenarios import ScenarioSpec

    mapping = {"kind": "matched-xor", "params": {"t": 3, "s": 4}}
    specs = []
    for stride in (1, 3, 8, 96):
        for length in (64, 128):
            specs.append(
                ScenarioSpec.from_dict(
                    {
                        "name": f"mix-s{stride}-l{length}",
                        "mapping": mapping,
                        "memory": {"t": 3},
                        "workload": {
                            "kind": "strided",
                            "params": {
                                "base": 0,
                                "stride": stride,
                                "length": length,
                            },
                        },
                    }
                )
            )
    for bits in (5, 6, 7, 8):
        specs.append(
            ScenarioSpec.from_dict(
                {
                    "name": f"mix-bitrev{bits}",
                    "mapping": mapping,
                    "memory": {"t": 3},
                    "workload": {
                        "kind": "bit-reversal",
                        "params": {"bits": bits},
                    },
                }
            )
        )
    report = benchmark(evaluate_batch, specs)
    assert len(report.results) == len(specs)
    assert report.soa_count > 0


# -- program-grid fallback tier -------------------------------------------
#
# Program/decoupled points cannot take the analytic or SoA tiers — the
# fallback tier is their whole story, and these benches record how fast
# it runs serially, sharded over 4 workers, and as a bare per-point
# loop.  The committed 64-point example is the fixture, so the bench
# measures exactly what `repro scenario run examples/... --engine batch
# --batch-workers 4` runs.  On multi-core CI the workers=4 series
# should sit well under the serial one; `lab history
# --flag-regressions` trends all three (see the history-smoke CI job).


def _program_grid_specs():
    from pathlib import Path

    from repro.scenarios import load_scenarios

    path = (
        Path(__file__).resolve().parent.parent
        / "examples"
        / "scenario_program_grid_64.json"
    )
    return load_scenarios(path.read_text())


_PROGRAM_SPECS = _program_grid_specs()


def test_program_grid_64_serial(benchmark):
    """The 64-point program grid through the serial fallback tier."""
    from repro.batch import evaluate_batch

    report = benchmark.pedantic(
        evaluate_batch, args=(_PROGRAM_SPECS,), rounds=2, iterations=1
    )
    assert len(report.results) == 64
    assert report.fallback_count == 64


def test_program_grid_64_workers4(benchmark):
    """The same grid with the fallback tier sharded over 4 workers."""
    from functools import partial

    from repro.batch import evaluate_batch

    report = benchmark.pedantic(
        partial(evaluate_batch, _PROGRAM_SPECS, workers=4),
        rounds=2,
        iterations=1,
    )
    assert len(report.results) == 64
    assert report.workers == 4


def test_program_grid_64_kernel_baseline(benchmark):
    """Per-point simulate() over the identical grid — the denominator."""
    from repro.scenarios import simulate

    def run_all():
        return [simulate(spec) for spec in _PROGRAM_SPECS]

    results = benchmark.pedantic(run_all, rounds=2, iterations=1)
    assert len(results) == 64
