"""Bench E01: Figure 3 layout regeneration.

Regenerates the paper artifact via the shared experiment runner, prints
the table (run with -s to see it) and measures the regeneration cost.
"""

from conftest import report_and_assert

from repro.report.experiments import run_e01


def test_e01(benchmark):
    result = benchmark.pedantic(run_e01, rounds=3, iterations=1)
    report_and_assert(result)
