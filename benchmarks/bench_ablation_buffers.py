"""Ablation A1: buffer depth vs ordering discipline.

The paper's position is that reordering makes memory-side buffers
unnecessary: the Section 3.2 order needs only the module's request
register (q=1), while ordered access of in-window families needs buffers
to approach peak throughput (Harper's result, cited in the paper's
introduction) and still cannot reach the minimum latency.

This bench sweeps q in {1, 2, 4, 8} for a family-2 access on the matched
design and regenerates that comparison.
"""

from repro.core.planner import AccessPlanner
from repro.core.vector import VectorAccess
from repro.memory.config import MemoryConfig
from repro.memory.system import MemorySystem
from repro.report.tables import render_table

VECTOR = VectorAccess(16, 12, 128)  # family 2, in-window
MINIMUM = 8 + 128 + 1


def sweep() -> list[list]:
    rows = []
    for q in (1, 2, 4, 8):
        config = MemoryConfig.matched(t=3, s=4, input_capacity=q)
        planner = AccessPlanner(config.mapping, 3)
        system = MemorySystem(config)
        row = [q]
        for mode in ("ordered", "subsequence", "conflict_free"):
            plan = planner.plan(VECTOR, mode=mode)
            row.append(system.run_plan(plan).latency)
        rows.append(row)
    return rows


def test_buffer_ablation(benchmark):
    rows = benchmark.pedantic(sweep, rounds=3, iterations=1)
    print()
    print("== A1: buffer depth vs ordering (stride 12, L=128, min 137)")
    print(
        render_table(
            ["q", "ordered", "subsequence", "conflict-free"], rows
        )
    )
    by_q = {row[0]: row[1:] for row in rows}
    # Conflict-free order needs no buffers: minimum latency at q=1.
    for q, (_ordered, _subsequence, conflict_free) in by_q.items():
        assert conflict_free == MINIMUM, q
    # Ordered access never reaches the minimum, however deep the buffers.
    assert all(ordered > MINIMUM for ordered, _, _ in by_q.values())
    # Buffers monotonically help ordered access (Harper's effect).
    ordered_latencies = [by_q[q][0] for q in (1, 2, 4, 8)]
    assert ordered_latencies == sorted(ordered_latencies, reverse=True)
    # Subsequence order with q=2 stays within the paper's 2T+L bound.
    assert by_q[2][1] <= 2 * 8 + 128
