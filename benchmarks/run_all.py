#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md from every experiment runner.

Usage::

    python benchmarks/run_all.py [output-path]

Runs all experiments (E01..E16), prints progress, and writes a Markdown
report with every regenerated table and its paper-vs-measured checks.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

from repro.report.experiments import ALL_EXPERIMENTS
from repro.report.tables import render_markdown

HEADER = """\
# EXPERIMENTS — paper vs. measured

Reproduction of every numeric/tabular artifact of Valero et al.,
"Increasing the Number of Strides for Conflict-Free Vector Access"
(ISCA 1992).  Regenerate this file with `python benchmarks/run_all.py`;
each section below is produced by the matching `repro.report.experiments`
runner and the matching `benchmarks/bench_*` target.

Absolute cycle counts come from this repository's cycle-accurate
simulator (timing contract: 1-cycle buses, T-cycle modules — the same
model the paper's latency formulas assume), so the paper's *exact*
latency and efficiency numbers are expected to match, not just the
shape.

"""


def main(output: str) -> int:
    sections: list[str] = [HEADER]
    all_ok = True
    for experiment_id in sorted(ALL_EXPERIMENTS):
        runner = ALL_EXPERIMENTS[experiment_id]
        started = time.time()
        result = runner()
        elapsed = time.time() - started
        status = "PASS" if result.all_passed else "FAIL"
        all_ok = all_ok and result.all_passed
        print(f"{experiment_id}: {status} ({elapsed:.1f}s) {result.title}")

        sections.append(f"## {experiment_id} — {result.title}\n")
        sections.append(render_markdown(result.headers, result.rows))
        sections.append("")
        if result.notes:
            for note in result.notes:
                sections.append(f"*Note: {note}*")
            sections.append("")
        sections.append("| check | paper / expected | measured | status |")
        sections.append("|---|---|---|---|")
        for check in result.checks:
            mark = "pass" if check.passed else "**FAIL**"
            sections.append(
                f"| {check.claim} | {check.expected} | {check.measured} "
                f"| {mark} |"
            )
        sections.append("")

    Path(output).write_text("\n".join(sections))
    print(f"wrote {output}")
    return 0 if all_ok else 1


if __name__ == "__main__":
    target = sys.argv[1] if len(sys.argv) > 1 else "EXPERIMENTS.md"
    raise SystemExit(main(target))
