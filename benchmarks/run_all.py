#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md from every experiment runner.

Usage::

    python benchmarks/run_all.py [output-path]

Runs all experiments (E01..E16) through the ``repro.lab`` orchestration
subsystem — in parallel, with content-addressed result caching under
the lab root (``$REPRO_LAB_ROOT`` or ``.repro-lab``) — and writes a
Markdown report with every regenerated table and its paper-vs-measured
checks.  A warm cache makes re-generation near-instant; pass
``--force`` to re-simulate everything from scratch.
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.lab import (
    ArtifactStore,
    EXPERIMENT_KIND,
    build_registry,
    default_lab_root,
    render_experiments_markdown,
    run_jobs,
    write_run_artifacts,
)


def main(
    output: str,
    *,
    lab_root: str | None = None,
    workers: int | None = None,
    force: bool = False,
) -> int:
    store = ArtifactStore(lab_root or default_lab_root())
    specs = [
        spec
        for spec in build_registry().values()
        if spec.kind == EXPERIMENT_KIND
    ]
    report = run_jobs(
        specs, store=store, workers=workers, force=force, progress=print
    )
    write_run_artifacts(store, report)
    Path(output).write_text(
        render_experiments_markdown(
            [outcome.record for outcome in report.outcomes]
        )
    )
    print(f"wrote {output}")
    return 0 if report.all_passed else 1


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("output", nargs="?", default="EXPERIMENTS.md")
    parser.add_argument(
        "--jobs", type=int, default=None, help="worker processes"
    )
    parser.add_argument(
        "--force", action="store_true", help="ignore cached artifacts"
    )
    parser.add_argument("--lab-root", default=None)
    args = parser.parse_args()
    raise SystemExit(
        main(
            args.output,
            lab_root=args.lab_root,
            workers=args.jobs,
            force=args.force,
        )
    )
