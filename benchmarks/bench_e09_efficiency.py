"""Bench E09 + E16: Section 5-B efficiency, model vs simulation.

E09 reproduces the four headline efficiencies (0.914 / 0.997 / 0.4 /
0.84); E16 validates the per-family steady-state cost ``2**min(i, t)``
against the cycle-accurate simulator.
"""

from conftest import report_and_assert

from repro.report.experiments import run_e09, run_e16


def test_e09(benchmark):
    result = benchmark.pedantic(run_e09, rounds=3, iterations=1)
    report_and_assert(result)


def test_e16(benchmark):
    result = benchmark.pedantic(run_e16, rounds=3, iterations=1)
    report_and_assert(result)
