"""Shared helper for the experiment benches.

Every bench calls its experiment runner through pytest-benchmark (so the
suite doubles as a performance regression harness), prints the regenerated
table and asserts all paper-vs-measured checks.
"""

from __future__ import annotations

from repro.report.experiments import ExperimentResult
from repro.report.tables import render_table


def report_and_assert(result: ExperimentResult) -> None:
    """Print the regenerated table and fail on any unmet paper claim."""
    print()
    print(f"== {result.experiment_id}: {result.title}")
    print(render_table(result.headers, result.rows))
    for note in result.notes:
        print(f"note: {note}")
    failures = [check for check in result.checks if not check.passed]
    for check in result.checks:
        status = "ok " if check.passed else "FAIL"
        print(f"[{status}] {check.claim}: expected {check.expected}, "
              f"measured {check.measured}")
    assert not failures, f"{len(failures)} paper claims not reproduced"
