"""Shared helper for the experiment benches.

Every bench calls its experiment runner through pytest-benchmark (so the
suite doubles as a performance regression harness), prints the regenerated
table and asserts all paper-vs-measured checks.  ``--benchmark-json``
artifacts are stamped with a ``repro_meta`` block (git commit, package
version, timestamp, source fingerprint) so ``repro lab history`` can
order and attribute them across commits.
"""

from __future__ import annotations

from repro.report.experiments import ExperimentResult
from repro.report.tables import render_table


def pytest_benchmark_update_json(config, benchmarks, output_json):
    """Stamp the ``--benchmark-json`` artifact with run identity.

    pytest-benchmark's own ``commit_info`` is best-effort (empty under
    shallow CI checkouts); the ``repro_meta`` block is what
    ``repro.obs.history`` keys bench ingestion on.
    """
    import time

    import repro
    from repro.lab.jobs import source_fingerprint
    from repro.obs.history import current_git_commit

    output_json["repro_meta"] = {
        "git_commit": current_git_commit(),
        "package_version": repro.__version__,
        "created_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "source_fingerprint": source_fingerprint(),
    }


def report_and_assert(result: ExperimentResult) -> None:
    """Print the regenerated table and fail on any unmet paper claim."""
    print()
    print(f"== {result.experiment_id}: {result.title}")
    print(render_table(result.headers, result.rows))
    for note in result.notes:
        print(f"note: {note}")
    failures = [check for check in result.checks if not check.passed]
    for check in result.checks:
        status = "ok " if check.passed else "FAIL"
        print(f"[{status}] {check.claim}: expected {check.expected}, "
              f"measured {check.measured}")
    assert not failures, f"{len(failures)} paper claims not reproduced"
