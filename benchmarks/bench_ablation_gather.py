"""Ablation A6: gather (indexed) access — ordered vs cooldown-scheduled.

The introduction's "more unstructured patterns": a gather has no
sigma*2^x structure, so the Section 3 reordering does not apply, but the
same out-of-order machinery (element indices with requests, random-access
registers) lets the memory unit schedule the requests with the greedy
cooldown scheduler.  Three index populations:

* a random permutation of a dense range (balanced: scheduling wins big);
* uniform random indices with duplicates (mostly balanced);
* power-of-two strided indices disguised as a gather (clustered: nothing
  can help — T-matched is necessary).
"""

import random

from repro.core.gather import IndexedAccess, plan_indexed
from repro.mappings.linear import MatchedXorMapping
from repro.memory.config import MemoryConfig
from repro.memory.system import MemorySystem
from repro.report.tables import render_table

MAPPING = MatchedXorMapping(3, 4)
LENGTH = 128
MINIMUM = 8 + LENGTH + 1


def populations() -> dict[str, list[int]]:
    rng = random.Random(2026)
    permutation = list(range(LENGTH))
    rng.shuffle(permutation)
    return {
        "dense permutation": permutation,
        "uniform random": [rng.randrange(4096) for _ in range(LENGTH)],
        "stride-128 clustered": [i * 128 for i in range(LENGTH)],
    }


def sweep() -> list[list]:
    system = MemorySystem(MemoryConfig.matched(t=3, s=4, input_capacity=2))
    rows = []
    for name, indices in populations().items():
        access = IndexedAccess(0, indices)
        ordered = plan_indexed(MAPPING, 3, access, mode="ordered")
        scheduled = plan_indexed(MAPPING, 3, access, mode="scheduled")
        ordered_run = system.run_stream(ordered.request_stream())
        scheduled_run = system.run_stream(scheduled.request_stream())
        rows.append(
            [
                name,
                ordered_run.latency,
                scheduled_run.latency,
                scheduled.scheme,
                scheduled_run.conflict_free,
            ]
        )
    return rows


def test_gather_ablation(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(f"== A6: gather scheduling, {LENGTH} elements (min {MINIMUM})")
    print(
        render_table(
            ["index population", "ordered", "scheduled", "scheme", "CF"],
            rows,
        )
    )
    by_name = {row[0]: row for row in rows}
    # A dense permutation schedules perfectly.
    assert by_name["dense permutation"][2] == MINIMUM
    assert by_name["dense permutation"][2] < by_name["dense permutation"][1]
    # Scheduling never hurts.
    assert all(row[2] <= row[1] for row in rows)
    # Best-effort scheduling helps the (non-T-matched) random population
    # without reaching the minimum.
    uniform = by_name["uniform random"]
    assert MINIMUM < uniform[2] < uniform[1]
    assert not uniform[4]
    # The clustered population is hopeless for every order: all requests
    # serialise through one module (T-matched is necessary).
    clustered = by_name["stride-128 clustered"]
    assert clustered[2] >= LENGTH * 8
    assert not clustered[4]
