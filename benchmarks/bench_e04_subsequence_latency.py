"""Bench E04: Section 3.1 bounded-latency sweep.

Regenerates the paper artifact via the shared experiment runner, prints
the table (run with -s to see it) and measures the regeneration cost.
"""

from conftest import report_and_assert

from repro.report.experiments import run_e04


def test_e04(benchmark):
    result = benchmark.pedantic(run_e04, rounds=3, iterations=1)
    report_and_assert(result)
