"""Ablation A2: the paper's structured ordering vs an oracle scheduler.

The oracle (`repro.core.scheduler`) finds a conflict-free order whenever
one exists at all (the zero-idle cooldown-scheduling bound), with no
hardware constraints.  Sweeping lengths and strides shows:

* inside the window at register length, paper == oracle (both at
  ``T+L+1``) — the structured scheme is optimal where it applies;
* for arbitrary lengths the oracle only adds the rare perfectly
  balanced cases (e.g. short unit-stride vectors); most non-chunk
  lengths are infeasible for *any* order, so the Figure 6 hardware's
  restriction to ``L = k * Px`` costs almost nothing.
"""

from repro.core.planner import AccessPlanner
from repro.core.scheduler import OraclePlanner
from repro.core.vector import VectorAccess
from repro.mappings.linear import MatchedXorMapping
from repro.report.tables import render_table

PLANNER = AccessPlanner(MatchedXorMapping(3, 4), 3)
ORACLE = OraclePlanner(PLANNER)


def coverage_grid() -> list[list]:
    rows = []
    for length in (32, 48, 64, 96, 128):
        paper_hits = 0
        oracle_hits = 0
        cases = 0
        for stride in range(1, 33):
            for base in (0, 5, 16):
                cases += 1
                vector = VectorAccess(base, stride, length)
                if PLANNER.plan(vector, mode="auto").conflict_free:
                    paper_hits += 1
                if ORACLE.plan(vector).conflict_free:
                    oracle_hits += 1
        rows.append(
            [length, cases, paper_hits, oracle_hits, oracle_hits - paper_hits]
        )
    return rows


def test_oracle_ablation(benchmark):
    rows = benchmark.pedantic(coverage_grid, rounds=1, iterations=1)
    print()
    print("== A2: conflict-free coverage, paper ordering vs oracle "
          "(strides 1..32, 3 bases)")
    print(
        render_table(
            ["length", "cases", "paper CF", "oracle CF", "oracle-only"],
            rows,
        )
    )
    by_length = {row[0]: row for row in rows}
    # At register length the paper's scheme matches the oracle exactly.
    assert by_length[128][2] == by_length[128][3]
    # The oracle never does worse than the paper anywhere.
    assert all(row[3] >= row[2] for row in rows)
    # Away from register length, the oracle's edge exists but is small
    # relative to the total case count.
    extra = sum(row[4] for row in rows)
    cases = sum(row[1] for row in rows)
    assert 0 < extra < 0.2 * cases
