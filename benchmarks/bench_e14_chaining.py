"""Bench E14: Section 5-F chaining comparison.

Regenerates the paper artifact via the shared experiment runner, prints
the table (run with -s to see it) and measures the regeneration cost.
"""

from conftest import report_and_assert

from repro.report.experiments import run_e14


def test_e14(benchmark):
    result = benchmark.pedantic(run_e14, rounds=3, iterations=1)
    report_and_assert(result)
