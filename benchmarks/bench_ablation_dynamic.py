"""Ablation A4: static window vs per-stride dynamic schemes.

Harper & Linebarger's dynamic schemes pick the mapping per array from
its dominant stride: perfect for that stride, broken for any other
family touching the same array.  The paper's static window serves every
family in ``0..w`` with one mapping.  This bench accesses one array with
several strides (rows + columns + diagonal of one matrix) under both
approaches.
"""

from repro.core.planner import AccessPlanner
from repro.core.vector import VectorAccess
from repro.mappings.dynamic import DynamicSchemeSelector
from repro.memory.config import MemoryConfig
from repro.memory.system import MemorySystem
from repro.report.tables import render_table

LENGTH = 128
MINIMUM = 8 + LENGTH + 1
#: One array, three access strides (a 16-wide matrix): rows (1),
#: columns (16), diagonal (17).
STRIDES = [1, 16, 17]


def compare() -> list[list]:
    # Dynamic: the array was stored for its dominant stride (columns).
    selector = DynamicSchemeSelector(3)
    dynamic_mapping = selector.mapping_for_stride(16)
    dynamic_config = MemoryConfig(dynamic_mapping, 3, input_capacity=2)
    dynamic_planner = AccessPlanner(dynamic_mapping, 3)
    dynamic_system = MemorySystem(dynamic_config)

    # Static: the paper's matched design, out-of-order access.
    static_config = MemoryConfig.matched(t=3, s=4, input_capacity=2)
    static_planner = AccessPlanner(static_config.mapping, 3)
    static_system = MemorySystem(static_config)

    rows = []
    for stride in STRIDES:
        vector = VectorAccess(0, stride, LENGTH)
        dynamic_run = dynamic_system.run_plan(
            dynamic_planner.plan(vector, mode="ordered")
        )
        static_run = static_system.run_plan(
            static_planner.plan(vector, mode="auto")
        )
        rows.append(
            [
                stride,
                vector.family,
                dynamic_run.latency,
                static_run.latency,
            ]
        )
    return rows


def test_dynamic_ablation(benchmark):
    rows = benchmark.pedantic(compare, rounds=3, iterations=1)
    print()
    print("== A4: dynamic per-stride mapping (stored for stride 16) vs "
          "the paper's static window")
    print(
        render_table(
            ["stride", "family", "dynamic+ordered", "static window (paper)"],
            rows,
        )
    )
    by_stride = {row[0]: row for row in rows}
    # The dynamic scheme is perfect for its own stride...
    assert by_stride[16][2] == MINIMUM
    # ...but pays on the other strides of the same array (stride 1 is
    # family 0, not the stored family 4).
    assert by_stride[1][2] > MINIMUM
    # The paper's window serves all three at the minimum.
    assert all(row[3] == MINIMUM for row in rows)
