"""Bench E08: Section 5-A conflict-free stride fractions.

Regenerates the paper artifact via the shared experiment runner, prints
the table (run with -s to see it) and measures the regeneration cost.
"""

from conftest import report_and_assert

from repro.report.experiments import run_e08


def test_e08(benchmark):
    result = benchmark.pedantic(run_e08, rounds=3, iterations=1)
    report_and_assert(result)
